package blockdev

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjectedPersistent is the error a scripted fault delivers when the
// rule is classed persistent: retrying the read cannot succeed.
var ErrInjectedPersistent = errors.New("blockdev: injected persistent fault")

// IsTransient reports whether a device error is worth retrying: either
// it is the classic injected fault (ErrInjected, transient by
// convention) or it implements `Transient() bool` and says so.
// Persistent injected faults, validation errors, and unknown errors are
// not transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, ErrInjected)
}

// FaultMode selects what a matching rule does to a read.
type FaultMode int

const (
	// FaultError completes the read with an injected error.
	FaultError FaultMode = iota
	// FaultHang never completes the read (until ReleaseHung).
	FaultHang
	// FaultDelay adds latency before issuing the read to the inner
	// device — a clock-driven latency spike.
	FaultDelay
)

// String names the mode for diagnostics.
func (m FaultMode) String() string {
	switch m {
	case FaultError:
		return "err"
	case FaultHang:
		return "hang"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("FaultMode(%d)", int(m))
}

// FaultRule scripts one fault behavior. Rules are matched in order
// against every read; the first match applies. Each rule keeps its own
// per-disk, 1-based index of the reads its Disk/MinLen filter accepts,
// so schedules written against one disk (or against large read-ahead
// fetches only) are unaffected by other traffic.
type FaultRule struct {
	// Disk targets one drive; -1 matches every drive.
	Disk int
	// MinLen restricts the rule to reads of at least this many bytes.
	// Schedulers issue large read-ahead fetches and pass small client
	// requests through directly, so MinLen set to the read-ahead size
	// targets fetches alone. Zero matches every read.
	MinLen int64
	// Mode is what happens to a matching read.
	Mode FaultMode
	// From and To bound the matching read indices: a rule applies to
	// the From-th through (To-1)-th reads its filter accepts. From 0
	// means "from the first read"; To 0 means "forever".
	From, To int64
	// Every thins the window: only every Every-th read inside it
	// faults (0 and 1 both mean every read).
	Every int64
	// Delay is the added latency for FaultDelay.
	Delay time.Duration
	// Persistent delivers ErrInjectedPersistent instead of ErrInjected
	// for FaultError, marking the failure not worth retrying.
	Persistent bool
}

// validate reports structural problems in a rule.
func (r FaultRule) validate() error {
	if r.Disk < -1 {
		return fmt.Errorf("blockdev: fault rule disk %d", r.Disk)
	}
	if r.MinLen < 0 {
		return fmt.Errorf("blockdev: fault rule minlen %d", r.MinLen)
	}
	if r.From < 0 || r.To < 0 || (r.To != 0 && r.To <= r.From) {
		return fmt.Errorf("blockdev: fault rule window [%d,%d)", r.From, r.To)
	}
	if r.Every < 0 {
		return fmt.Errorf("blockdev: fault rule every=%d", r.Every)
	}
	if r.Mode == FaultDelay && r.Delay <= 0 {
		return errors.New("blockdev: delay rule needs a positive delay")
	}
	if r.Mode != FaultDelay && r.Delay != 0 {
		return fmt.Errorf("blockdev: delay set on %v rule", r.Mode)
	}
	return nil
}

// accepts reports whether the rule's static filter admits a read — the
// precondition for the rule's index to advance.
func (r FaultRule) accepts(disk int, length int64) bool {
	if r.Disk != -1 && r.Disk != disk {
		return false
	}
	return length >= r.MinLen
}

// matches reports whether the rule applies to the idx-th (1-based)
// read its filter accepted.
func (r FaultRule) matches(idx int64) bool {
	if r.From > 0 && idx < r.From {
		return false
	}
	if r.To > 0 && idx >= r.To {
		return false
	}
	if r.Every > 1 {
		base := r.From
		if base == 0 {
			base = 1
		}
		if (idx-base)%r.Every != 0 {
			return false
		}
	}
	return true
}

// ScriptDevice wraps a Device with a scriptable fault injector: reads
// matching a rule error, hang, or suffer extra latency, while the rest
// pass through untouched. It composes over any inner device (simulated
// or real) and drives its latency spikes from an injected clock, so
// fault schedules are deterministic under the simulator.
type ScriptDevice struct {
	inner Device
	clock Clock

	mu      sync.Mutex
	rules   []FaultRule
	counts  []map[int]int64 // per-rule, per-disk accepted-read index (1-based)
	faults  int64
	delayed int64
	hung    []hungRead
}

// hungRead is a read the script refused to complete. buf is non-nil
// when the read arrived through ReadInto; releasing it re-issues the
// pooled read.
type hungRead struct {
	disk        int
	off, length int64
	buf         []byte
	done        func([]byte, error)
}

var (
	_ Device            = (*ScriptDevice)(nil)
	_ Writer            = (*ScriptDevice)(nil)
	_ BufferAccounting  = (*ScriptDevice)(nil)
	_ CPUAccounting     = (*ScriptDevice)(nil)
	_ ReaderInto        = (*ScriptDevice)(nil)
	_ ReadIntoSupported = (*ScriptDevice)(nil)
)

// NewScriptDevice wraps inner with a fault script. clock drives delay
// rules (and the async fallbacks of the accounting passthroughs), so it
// must match the clock the scheduler runs on.
func NewScriptDevice(inner Device, clock Clock, rules []FaultRule) (*ScriptDevice, error) {
	if inner == nil {
		return nil, errors.New("blockdev: nil inner device")
	}
	if clock == nil {
		return nil, errors.New("blockdev: nil clock")
	}
	for i, r := range rules {
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("%w (rule %d)", err, i)
		}
	}
	return &ScriptDevice{
		inner:  inner,
		clock:  clock,
		rules:  append([]FaultRule(nil), rules...),
		counts: newCounts(len(rules)),
	}, nil
}

func newCounts(n int) []map[int]int64 {
	counts := make([]map[int]int64, n)
	for i := range counts {
		counts[i] = make(map[int]int64)
	}
	return counts
}

// SetRules atomically replaces the fault script (nil clears it) and
// resets the read counters, so the new rules' windows count from the
// moment of the swap.
func (d *ScriptDevice) SetRules(rules []FaultRule) error {
	for i, r := range rules {
		if err := r.validate(); err != nil {
			return fmt.Errorf("%w (rule %d)", err, i)
		}
	}
	d.mu.Lock()
	d.rules = append([]FaultRule(nil), rules...)
	d.counts = newCounts(len(rules))
	d.mu.Unlock()
	return nil
}

// Faults returns how many reads were failed by error rules.
func (d *ScriptDevice) Faults() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// Delayed returns how many reads suffered a scripted latency spike.
func (d *ScriptDevice) Delayed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.delayed
}

// Hung returns how many reads are currently held by hang rules.
func (d *ScriptDevice) Hung() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.hung)
}

// ReleaseHung completes every held read with err (nil releases them
// through the inner device as ordinary reads) and returns how many
// were released. Tests use it to shut down without leaking callbacks.
func (d *ScriptDevice) ReleaseHung(err error) int {
	d.mu.Lock()
	held := d.hung
	d.hung = nil
	d.mu.Unlock()
	for _, h := range held {
		if err != nil {
			if h.done != nil {
				h.done(nil, err)
			}
			continue
		}
		if ierr := d.read(h.disk, h.off, h.length, h.buf, h.done); ierr != nil && h.done != nil {
			h.done(nil, ierr)
		}
	}
	return len(held)
}

// Disks implements Device.
func (d *ScriptDevice) Disks() int { return d.inner.Disks() }

// Capacity implements Device.
func (d *ScriptDevice) Capacity(disk int) int64 { return d.inner.Capacity(disk) }

// ReadAt implements Device, applying the first matching rule.
func (d *ScriptDevice) ReadAt(disk int, off, length int64, done func([]byte, error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	return d.apply(disk, off, length, nil, done)
}

// ReadInto implements ReaderInto by delegation, with the fault script
// applied the same way as ReadAt. Callers must consult
// SupportsReadInto first: the forwarding only works when the inner
// device has a pooled read path of its own.
func (d *ScriptDevice) ReadInto(disk int, off, length int64, buf []byte, done func([]byte, error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	if _, ok := d.inner.(ReaderInto); !ok {
		return errors.New("blockdev: inner device has no ReadInto")
	}
	return d.apply(disk, off, length, buf, done)
}

// SupportsReadInto implements ReadIntoSupported: the wrapper's pooled
// path exists exactly when the wrapped device's does (recursing
// through nested wrappers).
func (d *ScriptDevice) SupportsReadInto() bool {
	if _, ok := d.inner.(ReaderInto); !ok {
		return false
	}
	if g, ok := d.inner.(ReadIntoSupported); ok {
		return g.SupportsReadInto()
	}
	return true
}

// read issues the read to the inner device through whichever path the
// caller used (buf nil → ReadAt, else ReadInto).
func (d *ScriptDevice) read(disk int, off, length int64, buf []byte, done func([]byte, error)) error {
	if buf != nil {
		return d.inner.(ReaderInto).ReadInto(disk, off, length, buf, done)
	}
	return d.inner.ReadAt(disk, off, length, done)
}

// apply matches the fault script and runs the read's fate: pass
// through, hang, delay, or injected error.
func (d *ScriptDevice) apply(disk int, off, length int64, buf []byte, done func([]byte, error)) error {
	d.mu.Lock()
	// Every rule whose filter accepts the read advances its index, even
	// when an earlier rule wins: later windows stay aligned with the
	// traffic the rule observes, not with which rule happened to fire.
	var rule *FaultRule
	for i := range d.rules {
		if !d.rules[i].accepts(disk, length) {
			continue
		}
		d.counts[i][disk]++
		if rule == nil && d.rules[i].matches(d.counts[i][disk]) {
			rule = &d.rules[i]
		}
	}
	if rule == nil {
		d.mu.Unlock()
		return d.read(disk, off, length, buf, done)
	}
	switch rule.Mode {
	case FaultHang:
		d.hung = append(d.hung, hungRead{disk: disk, off: off, length: length, buf: buf, done: done})
		d.mu.Unlock()
		return nil
	case FaultDelay:
		d.delayed++
		delay := rule.Delay
		d.mu.Unlock()
		d.clock.Schedule(delay, func() {
			if err := d.read(disk, off, length, buf, done); err != nil && done != nil {
				done(nil, err)
			}
		})
		return nil
	default: // FaultError
		d.faults++
		injected := ErrInjected
		if rule.Persistent {
			injected = ErrInjectedPersistent
		}
		d.mu.Unlock()
		// Deliver the failure through the inner device's completion
		// machinery so timing (sim events, worker goroutines) stays
		// realistic — the disk did the work, the result is garbage.
		return d.read(disk, off, length, buf, func([]byte, error) {
			if done != nil {
				done(nil, injected)
			}
		})
	}
}

// WriteAt implements Writer by delegation; the fault script applies to
// reads only. Writes to a read-only inner device fail with ErrReadOnly.
func (d *ScriptDevice) WriteAt(disk int, off, length int64, data []byte, done func(error)) error {
	w, ok := d.inner.(Writer)
	if !ok {
		return ErrReadOnly
	}
	return w.WriteAt(disk, off, length, data, done)
}

// SetLiveBuffers implements BufferAccounting by delegation (no-op when
// the inner device does not model buffer cost).
func (d *ScriptDevice) SetLiveBuffers(n int) {
	if a, ok := d.inner.(BufferAccounting); ok {
		a.SetLiveBuffers(n)
	}
}

// ChargeRequest implements CPUAccounting by delegation. When the inner
// device does not model CPU cost the completion still runs — off the
// caller's stack, through the clock, because core invokes ChargeRequest
// under its lock and the callback may re-enter the scheduler.
func (d *ScriptDevice) ChargeRequest(n int64, done func()) {
	if c, ok := d.inner.(CPUAccounting); ok {
		c.ChargeRequest(n, done)
		return
	}
	if done != nil {
		d.clock.Schedule(0, done)
	}
}

// ParseFaultScript parses the CLI fault grammar: rules separated by
// ';', each a comma-separated list of key=value fields.
//
//	mode=err|hang|delay   what matching reads suffer (required)
//	disk=N                target disk (default: all disks)
//	minlen=BYTES          only reads of at least this size (e.g. the
//	                      read-ahead size, to fault fetches alone)
//	from=N, to=N          1-based read-index window [from, to), counted
//	                      over the reads the disk/minlen filter accepts
//	every=N               fault every Nth read inside the window
//	delay=DURATION        added latency (delay mode, e.g. 50ms)
//	class=transient|persistent
//	                      error class (err mode; default transient)
//
// Example: "disk=0,mode=err,every=3;disk=1,mode=hang,from=10".
func ParseFaultScript(s string) ([]FaultRule, error) {
	var rules []FaultRule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule := FaultRule{Disk: -1}
		modeSet := false
		for _, field := range strings.Split(part, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("blockdev: fault field %q is not key=value", field)
			}
			var err error
			switch key {
			case "disk":
				rule.Disk, err = strconv.Atoi(val)
			case "minlen":
				rule.MinLen, err = strconv.ParseInt(val, 10, 64)
			case "mode":
				modeSet = true
				switch val {
				case "err":
					rule.Mode = FaultError
				case "hang":
					rule.Mode = FaultHang
				case "delay":
					rule.Mode = FaultDelay
				default:
					err = fmt.Errorf("blockdev: unknown fault mode %q", val)
				}
			case "from":
				rule.From, err = strconv.ParseInt(val, 10, 64)
			case "to":
				rule.To, err = strconv.ParseInt(val, 10, 64)
			case "every":
				rule.Every, err = strconv.ParseInt(val, 10, 64)
			case "delay":
				rule.Delay, err = time.ParseDuration(val)
			case "class":
				switch val {
				case "transient":
					rule.Persistent = false
				case "persistent":
					rule.Persistent = true
				default:
					err = fmt.Errorf("blockdev: unknown fault class %q", val)
				}
			default:
				err = fmt.Errorf("blockdev: unknown fault field %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("blockdev: fault rule %q: %w", part, err)
			}
		}
		if !modeSet {
			return nil, fmt.Errorf("blockdev: fault rule %q has no mode", part)
		}
		if err := rule.validate(); err != nil {
			return nil, fmt.Errorf("%w (rule %q)", err, part)
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, errors.New("blockdev: empty fault script")
	}
	return rules, nil
}
