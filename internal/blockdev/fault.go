package blockdev

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultDevice delivers on faulted reads.
var ErrInjected = errors.New("blockdev: injected fault")

// FaultDevice wraps a Device and fails every Nth read, for failure-
// injection tests: completions still arrive exactly once, carrying
// ErrInjected instead of data.
type FaultDevice struct {
	inner Device
	every int64

	mu      sync.Mutex
	count   int64
	faults  int64
	stopped bool
}

var _ Device = (*FaultDevice)(nil)

// NewFaultDevice fails every `every`-th read (1 = every read). It
// returns an error when every < 1 or inner is nil.
func NewFaultDevice(inner Device, every int64) (*FaultDevice, error) {
	if inner == nil {
		return nil, errors.New("blockdev: nil inner device")
	}
	if every < 1 {
		return nil, errors.New("blockdev: fault period must be >= 1")
	}
	return &FaultDevice{inner: inner, every: every}, nil
}

// Faults returns how many reads were failed.
func (d *FaultDevice) Faults() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// StopFaulting disables further injected failures (reads pass
// through).
func (d *FaultDevice) StopFaulting() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stopped = true
}

// Disks implements Device.
func (d *FaultDevice) Disks() int { return d.inner.Disks() }

// Capacity implements Device.
func (d *FaultDevice) Capacity(disk int) int64 { return d.inner.Capacity(disk) }

// ReadAt implements Device.
func (d *FaultDevice) ReadAt(disk int, off, length int64, done func([]byte, error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	d.mu.Lock()
	d.count++
	fault := !d.stopped && d.count%d.every == 0
	if fault {
		d.faults++
	}
	d.mu.Unlock()
	if !fault {
		return d.inner.ReadAt(disk, off, length, done)
	}
	// Deliver the failure through the inner device's completion
	// machinery so timing (sim events, worker goroutines) is realistic.
	return d.inner.ReadAt(disk, off, length, func([]byte, error) {
		if done != nil {
			done(nil, ErrInjected)
		}
	})
}
