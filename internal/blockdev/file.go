package blockdev

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// RealClock implements Clock over the wall clock. It is safe for
// concurrent use.
type RealClock struct {
	start time.Time
}

var _ Clock = (*RealClock)(nil)

// NewRealClock returns a clock whose epoch is now.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} } //lint:allow simdet real-clock shim

// Now returns the time since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) } //lint:allow simdet real-clock shim

// Schedule runs fn after d on a timer goroutine.
func (c *RealClock) Schedule(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, fn) //lint:allow simdet real-clock shim
	return func() { t.Stop() }
}

type fileReq struct {
	file   *os.File
	off    int64
	length int64
	write  bool
	data   []byte
	buf    []byte // caller-supplied read destination (ReadInto)
	wdone  func(error)
	done   func([]byte, error)
}

// FileDevice serves reads from one file per "disk" using a bounded
// worker pool with direct positional reads (the §4.4 design: direct
// asynchronous I/O, no shared kernel buffering managed by us).
//
// It exists so the examples can exercise the exact scheduler code path
// against a real OS; it is not part of the simulation.
type FileDevice struct {
	files []*os.File
	caps  []int64
	reqs  chan fileReq
	wg    sync.WaitGroup

	writable bool

	mu     sync.Mutex
	closed bool
}

var (
	_ Device     = (*FileDevice)(nil)
	_ ReaderInto = (*FileDevice)(nil)
)

// OpenFileDevice opens the given paths as read-only disks. workers
// bounds the number of concurrent reads (defaults to 2 per file when
// <= 0).
func OpenFileDevice(paths []string, workers int) (*FileDevice, error) {
	return openFileDevice(paths, workers, false)
}

// OpenFileDeviceRW opens the given paths read-write, enabling the
// Writer interface for the ingest path.
func OpenFileDeviceRW(paths []string, workers int) (*FileDevice, error) {
	return openFileDevice(paths, workers, true)
}

func openFileDevice(paths []string, workers int, writable bool) (*FileDevice, error) {
	if len(paths) == 0 {
		return nil, errors.New("blockdev: no paths")
	}
	if workers <= 0 {
		workers = 2 * len(paths)
	}
	d := &FileDevice{reqs: make(chan fileReq), writable: writable}
	for _, p := range paths {
		flag := os.O_RDONLY
		if writable {
			flag = os.O_RDWR
		}
		f, err := os.OpenFile(p, flag, 0)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("blockdev: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			d.Close()
			return nil, fmt.Errorf("blockdev: %w", err)
		}
		d.files = append(d.files, f)
		d.caps = append(d.caps, st.Size())
	}
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

func (d *FileDevice) worker() {
	defer d.wg.Done()
	for req := range d.reqs {
		if req.write {
			data := req.data
			if data == nil {
				data = make([]byte, req.length)
			}
			_, err := req.file.WriteAt(data, req.off)
			if req.wdone != nil {
				req.wdone(err)
			}
			continue
		}
		buf := req.buf
		if buf == nil {
			buf = make([]byte, req.length)
		}
		n, err := req.file.ReadAt(buf, req.off)
		if err != nil && n == int(req.length) {
			err = nil
		}
		if req.done != nil {
			req.done(buf[:n], err)
		}
	}
}

// Disks implements Device.
func (d *FileDevice) Disks() int { return len(d.files) }

// Capacity implements Device.
func (d *FileDevice) Capacity(disk int) int64 { return d.caps[disk] }

// ReadAt implements Device. The completion runs on a worker goroutine.
func (d *FileDevice) ReadAt(disk int, off, length int64, done func([]byte, error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	// The lock spans the send so Close cannot close the channel between
	// the check and the send.
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("blockdev: device closed")
	}
	d.reqs <- fileReq{file: d.files[disk], off: off, length: length, done: done}
	return nil
}

// ReadInto implements ReaderInto: the positional read lands in the
// caller's buffer. The completion runs on a worker goroutine.
func (d *FileDevice) ReadInto(disk int, off, length int64, buf []byte, done func([]byte, error)) error {
	if int64(len(buf)) != length {
		return ErrBadRequest
	}
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("blockdev: device closed")
	}
	d.reqs <- fileReq{file: d.files[disk], off: off, length: length, buf: buf, done: done}
	return nil
}

// WriteAt implements Writer when the device was opened read-write.
// data may be nil, in which case zeroes of the given length are
// written. The completion runs on a worker goroutine.
func (d *FileDevice) WriteAt(disk int, off, length int64, data []byte, done func(error)) error {
	if !d.writable {
		return ErrReadOnly
	}
	if data != nil && int64(len(data)) != length {
		return ErrBadRequest
	}
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("blockdev: device closed")
	}
	d.reqs <- fileReq{file: d.files[disk], off: off, length: length, write: true, data: data, wdone: done}
	return nil
}

// Close stops the workers and closes the files. In-flight reads finish
// first.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.reqs)
	d.wg.Wait()
	var first error
	for _, f := range d.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
