package blockdev

// ReplicaDisks returns the disks holding a copy of the primary disk's
// data under the rotated mirror layout: replica k of primary p lives
// on disk (p + k*stride) mod disks, stride = disks/replicas. The
// stride spreads a disk's mirrors across the array, so the replica
// sets of neighboring primaries land on distinct disks and one slow
// drive is a replica for as few primaries as possible.
//
// The first element is always the primary itself. replicas is clamped
// to the disk count (mirroring a disk onto itself adds nothing), so
// the result always holds min(replicas, disks) distinct disks;
// replicas <= 1 or a single-disk device yields just the primary.
func ReplicaDisks(primary, replicas, disks int) []int {
	if replicas > disks {
		replicas = disks
	}
	if replicas <= 1 || disks <= 1 {
		return []int{primary}
	}
	stride := disks / replicas
	if stride < 1 {
		stride = 1
	}
	out := make([]int, 0, replicas)
	seen := make(map[int]bool, replicas)
	for k := 0; len(out) < replicas; k++ {
		d := (primary + k*stride) % disks
		if seen[d] {
			// A stride that divides the disk count unevenly can revisit
			// a disk before covering `replicas` distinct ones; linear
			// probing from the collision keeps the set distinct.
			d = (d + 1) % disks
			for seen[d] {
				d = (d + 1) % disks
			}
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}
