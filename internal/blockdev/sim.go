package blockdev

import (
	"errors"
	"time"

	"seqstream/internal/flight"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// SimClock adapts a simulation engine to the Clock interface. It must
// only be used from the engine's event loop.
type SimClock struct {
	eng *sim.Engine
}

var _ Clock = (*SimClock)(nil)

// NewSimClock wraps an engine.
func NewSimClock(eng *sim.Engine) *SimClock { return &SimClock{eng: eng} }

// Now returns the virtual time.
func (c *SimClock) Now() time.Duration { return c.eng.Now() }

// Schedule runs fn after d of virtual time.
func (c *SimClock) Schedule(d time.Duration, fn func()) (cancel func()) {
	ev := c.eng.Schedule(d, fn)
	return func() { c.eng.Cancel(ev) }
}

// SimDevice adapts a simulated host (iostack.Host) to the Device
// interface. Completions carry nil data.
type SimDevice struct {
	host *iostack.Host
	fr   *flight.Recorder
}

// SetFlight attaches a flight recorder: every completed device read
// records an OpDevRead on the disk's ring, timed by the recorder's
// clock (the engine's virtual clock in simulations). It also cascades
// to the host's controllers so the controller layer stamps its
// accept/complete events with global disk ids. Call it before traffic.
func (d *SimDevice) SetFlight(rec *flight.Recorder) {
	d.fr = rec
	base := 0
	for i := 0; i < d.host.Controllers(); i++ {
		ctrl := d.host.Controller(i)
		ctrl.SetFlight(rec, base)
		base += ctrl.Disks()
	}
}

var (
	_ Device           = (*SimDevice)(nil)
	_ BufferAccounting = (*SimDevice)(nil)
	_ CPUAccounting    = (*SimDevice)(nil)
)

// NewSimDevice wraps a simulated host.
func NewSimDevice(host *iostack.Host) (*SimDevice, error) {
	if host == nil {
		return nil, errors.New("blockdev: nil host")
	}
	return &SimDevice{host: host}, nil
}

// Host returns the underlying simulated host.
func (d *SimDevice) Host() *iostack.Host { return d.host }

// Disks implements Device.
func (d *SimDevice) Disks() int { return d.host.NumDisks() }

// Capacity implements Device.
func (d *SimDevice) Capacity(disk int) int64 { return d.host.DiskCapacity(disk) }

// SetLiveBuffers implements BufferAccounting.
func (d *SimDevice) SetLiveBuffers(n int) { d.host.SetLiveBuffers(n) }

// ChargeRequest implements CPUAccounting.
func (d *SimDevice) ChargeRequest(n int64, done func()) { d.host.ChargeRequest(n, done) }

// ReadAt implements Device.
func (d *SimDevice) ReadAt(disk int, off, length int64, done func([]byte, error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	return d.host.ReadAt(disk, off, length, func(res iostack.Result) {
		if d.fr != nil {
			d.fr.RingFor(disk).Record(flight.Event{Op: flight.OpDevRead, Disk: uint16(disk),
				Stream: flight.NoStream, Offset: off, Length: length,
				T: time.Duration(res.End), Dur: time.Duration(res.End - res.Start)})
		}
		if done != nil {
			done(nil, nil)
		}
	})
}

var _ Writer = (*SimDevice)(nil)

// WriteAt implements Writer; simulated writes discard data.
func (d *SimDevice) WriteAt(disk int, off, length int64, _ []byte, done func(error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	return d.host.WriteAt(disk, off, length, func(iostack.Result) {
		if done != nil {
			done(nil)
		}
	})
}
