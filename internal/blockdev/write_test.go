package blockdev

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"
)

func TestMemDeviceWrites(t *testing.T) {
	dev, err := NewMemDevice(1, 1<<20, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	if err := dev.WriteAt(0, 0, 4096, nil, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if dev.Writes() != 1 {
		t.Errorf("Writes = %d", dev.Writes())
	}
	if err := dev.WriteAt(0, 1<<20, 1, nil, nil); err == nil {
		t.Error("out-of-range write accepted")
	}
	// With latency the completion is asynchronous.
	slow, err := NewMemDevice(1, 1<<20, time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	if err := slow.WriteAt(0, 0, 512, nil, func(error) { close(got) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("latency write never completed")
	}
}

func TestFileDeviceReadOnlyRejectsWrites(t *testing.T) {
	path := writeTestFile(t, 8192)
	dev, err := OpenFileDevice([]string{path}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if err := dev.WriteAt(0, 0, 512, nil, nil); !errors.Is(err, ErrReadOnly) {
		t.Errorf("err = %v, want ErrReadOnly", err)
	}
}

func TestFileDeviceRWWritesData(t *testing.T) {
	path := writeTestFile(t, 16384)
	dev, err := OpenFileDeviceRW([]string{path}, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	done := make(chan error, 1)
	if err := dev.WriteAt(0, 4096, 1024, payload, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[4096:5120], payload) {
		t.Error("written bytes not persisted")
	}
	// Surrounding data untouched.
	if raw[4095] == 0xAB || raw[5120] == 0xAB {
		t.Error("write clobbered neighbors")
	}
}

func TestFileDeviceWriteValidation(t *testing.T) {
	path := writeTestFile(t, 8192)
	dev, err := OpenFileDeviceRW([]string{path}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if err := dev.WriteAt(0, 0, 1024, make([]byte, 512), nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("length/data mismatch err = %v", err)
	}
	if err := dev.WriteAt(0, 8192, 1, nil, nil); err == nil {
		t.Error("out-of-range write accepted")
	}
}
