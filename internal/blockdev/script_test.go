package blockdev

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// simScript builds a ScriptDevice over a simulated host.
func simScript(t *testing.T, rules []FaultRule) (*sim.Engine, *ScriptDevice) {
	t.Helper()
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewScriptDevice(inner, NewSimClock(eng), rules)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sd
}

func TestScriptDeviceValidation(t *testing.T) {
	eng := sim.NewEngine()
	host, _ := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	inner, _ := NewSimDevice(host)
	clock := NewSimClock(eng)
	if _, err := NewScriptDevice(nil, clock, nil); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewScriptDevice(inner, nil, nil); err == nil {
		t.Error("nil clock accepted")
	}
	bad := []FaultRule{
		{Disk: -2, Mode: FaultError},
		{Mode: FaultError, MinLen: -1},
		{Mode: FaultError, From: 5, To: 3},
		{Mode: FaultError, From: -1},
		{Mode: FaultError, Every: -2},
		{Mode: FaultDelay},
		{Mode: FaultError, Delay: time.Second},
	}
	for i, r := range bad {
		if _, err := NewScriptDevice(inner, clock, []FaultRule{r}); err == nil {
			t.Errorf("rule %d (%+v) accepted", i, r)
		}
		sd, _ := NewScriptDevice(inner, clock, nil)
		if err := sd.SetRules([]FaultRule{r}); err == nil {
			t.Errorf("SetRules accepted rule %d (%+v)", i, r)
		}
	}
}

func TestScriptErrorWindowAndEvery(t *testing.T) {
	// Reads 3..8 on disk 0 fault, but only every 2nd (3, 5, 7).
	eng, sd := simScript(t, []FaultRule{
		{Disk: 0, Mode: FaultError, From: 3, To: 9, Every: 2},
	})
	var failed []int
	for i := 1; i <= 10; i++ {
		i := i
		if err := sd.ReadAt(0, int64(i)*4096, 4096, func(_ []byte, err error) {
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Errorf("read %d: err = %v, want ErrInjected", i, err)
				}
				failed = append(failed, i)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(failed) != "[3 5 7]" {
		t.Errorf("failed reads = %v, want [3 5 7]", failed)
	}
	if sd.Faults() != 3 {
		t.Errorf("Faults = %d", sd.Faults())
	}
}

func TestScriptPerDiskCounters(t *testing.T) {
	// Disk 1's first read faults; disk 0 traffic must not advance disk
	// 1's index.
	mem, err := NewMemDevice(2, 1<<20, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewScriptDevice(mem, NewSimClock(sim.NewEngine()), []FaultRule{
		{Disk: 1, Mode: FaultError, From: 1, To: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sd.ReadAt(0, int64(i)*4096, 4096, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("disk 0 read %d failed: %v", i, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	gotErr := false
	if err := sd.ReadAt(1, 0, 4096, func(_ []byte, err error) {
		gotErr = err != nil
	}); err != nil {
		t.Fatal(err)
	}
	if !gotErr {
		t.Error("disk 1 first read did not fault")
	}
}

func TestScriptPersistentClass(t *testing.T) {
	eng, sd := simScript(t, []FaultRule{
		{Disk: -1, Mode: FaultError, Persistent: true},
	})
	var got error
	if err := sd.ReadAt(0, 0, 4096, func(_ []byte, err error) { got = err }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrInjectedPersistent) {
		t.Errorf("err = %v, want ErrInjectedPersistent", got)
	}
	if IsTransient(got) {
		t.Error("persistent fault classified transient")
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrInjected, true},
		{fmt.Errorf("wrapped: %w", ErrInjected), true},
		{ErrInjectedPersistent, false},
		{ErrBadRequest, false},
		{errors.New("mystery"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestScriptHangAndRelease(t *testing.T) {
	eng, sd := simScript(t, []FaultRule{
		{Disk: 0, Mode: FaultHang},
	})
	completed := false
	if err := sd.ReadAt(0, 0, 4096, func([]byte, error) { completed = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("hung read completed")
	}
	if sd.Hung() != 1 {
		t.Fatalf("Hung = %d", sd.Hung())
	}

	var got error
	sentinel := errors.New("released")
	sd.hung[0].done = func(_ []byte, err error) { got = err }
	if n := sd.ReleaseHung(sentinel); n != 1 {
		t.Fatalf("ReleaseHung = %d", n)
	}
	if got != sentinel {
		t.Errorf("released err = %v", got)
	}
	if sd.Hung() != 0 {
		t.Errorf("Hung = %d after release", sd.Hung())
	}
}

func TestScriptHangReleaseThroughInner(t *testing.T) {
	// ReleaseHung(nil) reissues the held reads on the inner device.
	eng, sd := simScript(t, []FaultRule{
		{Disk: 0, Mode: FaultHang, From: 1, To: 2},
	})
	var done bool
	if err := sd.ReadAt(0, 0, 4096, func(_ []byte, err error) {
		if err != nil {
			t.Errorf("released read failed: %v", err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	sd.ReleaseHung(nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("released read never completed")
	}
}

func TestScriptDelaySpike(t *testing.T) {
	const spike = 250 * time.Millisecond
	eng, sd := simScript(t, []FaultRule{
		{Disk: 0, Mode: FaultDelay, Delay: spike, From: 2, To: 3},
	})
	clock := NewSimClock(eng)
	var fast, slow time.Duration
	if err := sd.ReadAt(0, 0, 4096, func([]byte, error) { fast = clock.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sd.ReadAt(0, 4096, 4096, func([]byte, error) { slow = clock.Now() - fast }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if slow < spike {
		t.Errorf("spiked read took %v, want >= %v", slow, spike)
	}
	if sd.Delayed() != 1 {
		t.Errorf("Delayed = %d", sd.Delayed())
	}
}

func TestScriptFirstMatchWins(t *testing.T) {
	// A hang rule shadowed by an earlier error rule never triggers.
	eng, sd := simScript(t, []FaultRule{
		{Disk: 0, Mode: FaultError, From: 1, To: 2},
		{Disk: 0, Mode: FaultHang, From: 1, To: 2},
	})
	var got error
	completed := false
	if err := sd.ReadAt(0, 0, 4096, func(_ []byte, err error) { got, completed = err, true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed || !errors.Is(got, ErrInjected) {
		t.Errorf("completed=%v err=%v, want injected error", completed, got)
	}
	if sd.Hung() != 0 {
		t.Error("shadowed hang rule fired")
	}
}

func TestScriptMinLenTargetsLargeReads(t *testing.T) {
	// A minlen rule faults read-ahead-sized requests while small client
	// reads pass, and its index counts only the large reads.
	mem, err := NewMemDevice(1, 16<<20, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewScriptDevice(mem, NewSimClock(sim.NewEngine()), []FaultRule{
		{Disk: 0, Mode: FaultError, MinLen: 1 << 20, From: 2, To: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	read := func(length int64) error {
		var got error
		if err := sd.ReadAt(0, 0, length, func(_ []byte, err error) { got = err }); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if err := read(4096); err != nil {
		t.Errorf("small read 1: %v", err)
	}
	if err := read(1 << 20); err != nil {
		t.Errorf("large read 1 (index 1, before window): %v", err)
	}
	if err := read(4096); err != nil {
		t.Errorf("small read 2: %v", err)
	}
	if err := read(1 << 20); !errors.Is(err, ErrInjected) {
		t.Errorf("large read 2 (index 2): err = %v, want ErrInjected", err)
	}
	if err := read(1 << 20); err != nil {
		t.Errorf("large read 3 (past window): %v", err)
	}
}

func TestScriptWritePassthrough(t *testing.T) {
	mem, err := NewMemDevice(1, 1<<20, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	sd, err := NewScriptDevice(mem, NewSimClock(eng), nil)
	if err != nil {
		t.Fatal(err)
	}
	wrote := false
	if err := sd.WriteAt(0, 0, 4096, nil, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		wrote = true
	}); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Error("write never completed")
	}

	// A read-only inner device rejects writes.
	_, roSD := simScript(t, nil)
	_ = roSD
}

func TestScriptAccountingPassthrough(t *testing.T) {
	eng, sd := simScript(t, nil)
	sd.SetLiveBuffers(3) // must not panic; sim host accepts it
	charged := false
	sd.ChargeRequest(4096, func() { charged = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !charged {
		t.Error("ChargeRequest completion never ran")
	}

	// Inner without CPU accounting: completion still arrives, via the
	// clock (never synchronously on the caller's stack).
	mem, _ := NewMemDevice(1, 1<<20, 0, false)
	eng2 := sim.NewEngine()
	sd2, err := NewScriptDevice(mem, NewSimClock(eng2), nil)
	if err != nil {
		t.Fatal(err)
	}
	charged2 := false
	sd2.ChargeRequest(4096, func() { charged2 = true })
	if charged2 {
		t.Error("fallback ChargeRequest ran synchronously")
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if !charged2 {
		t.Error("fallback ChargeRequest never ran")
	}
	sd2.SetLiveBuffers(1) // no-op fallback
}

func TestParseFaultScript(t *testing.T) {
	rules, err := ParseFaultScript("disk=0,mode=err,every=3; disk=1,mode=hang,from=10 ;mode=delay,delay=50ms,from=2,to=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	want := []FaultRule{
		{Disk: 0, Mode: FaultError, Every: 3},
		{Disk: 1, Mode: FaultHang, From: 10},
		{Disk: -1, Mode: FaultDelay, Delay: 50 * time.Millisecond, From: 2, To: 4},
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}

	if rules, err := ParseFaultScript("mode=err,class=persistent"); err != nil || !rules[0].Persistent {
		t.Errorf("persistent class: rules=%+v err=%v", rules, err)
	}
	if rules, err := ParseFaultScript("mode=hang,minlen=1048576"); err != nil || rules[0].MinLen != 1<<20 {
		t.Errorf("minlen: rules=%+v err=%v", rules, err)
	}

	bad := []string{
		"",
		"disk=0",                  // no mode
		"mode=explode",            // unknown mode
		"mode=err,disk=x",         // bad int
		"mode=delay,delay=fast",   // bad duration
		"mode=err,class=flaky",    // unknown class
		"mode=err,color=red",      // unknown key
		"mode=err,from=9,to=3",    // inverted window
		"mode=hang;mode=err,oops", // second rule malformed
	}
	for _, s := range bad {
		if _, err := ParseFaultScript(s); err == nil {
			t.Errorf("ParseFaultScript(%q) accepted", s)
		}
	}
}
