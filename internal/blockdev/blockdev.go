package blockdev

import (
	"errors"
	"time"
)

// Clock provides time and timers. The simulated implementation advances
// virtual time on the event engine; the real implementation wraps the
// wall clock.
type Clock interface {
	// Now returns the time since the clock's epoch.
	Now() time.Duration
	// Schedule runs fn after d. The returned function cancels the
	// timer; cancelling after the timer fired is a no-op.
	Schedule(d time.Duration, fn func()) (cancel func())
}

// Device is an asynchronous multi-disk read target.
//
// Completion callbacks may run on the simulation event loop (simulated
// devices) or on internal worker goroutines (real devices); callers
// that share state across completions must serialize accordingly.
type Device interface {
	// Disks returns the number of addressable drives.
	Disks() int
	// Capacity returns the byte size of a drive.
	Capacity(disk int) int64
	// ReadAt reads [off, off+length) from a drive and invokes done
	// exactly once. data is nil for devices that do not materialize
	// bytes (simulators). A non-nil error is reported through done;
	// ReadAt itself returns an error only for malformed requests.
	ReadAt(disk int, off, length int64, done func(data []byte, err error)) error
}

// ReaderInto is optionally implemented by devices that can read into
// a caller-supplied buffer, so callers with pooled staging memory
// avoid a per-read allocation. buf must hold exactly length bytes;
// done receives buf (possibly truncated on a short read) or nil on
// failure. The device must not retain buf after invoking done.
type ReaderInto interface {
	ReadInto(disk int, off, length int64, buf []byte, done func(data []byte, err error)) error
}

// ReadIntoSupported is optionally implemented alongside ReaderInto by
// wrapper devices (fault injectors) whose ReadInto only works when the
// device they wrap implements it too. Consumers that found ReaderInto
// on a device should check this gate before committing to the pooled
// path; a device without the gate supports ReadInto unconditionally.
type ReadIntoSupported interface {
	SupportsReadInto() bool
}

// BufferAccounting is optionally implemented by devices whose cost
// model depends on the number of live host I/O buffers (the simulated
// host). The core scheduler calls it as buffers come and go.
type BufferAccounting interface {
	SetLiveBuffers(n int)
}

// CPUAccounting is optionally implemented by devices that model host
// CPU cost. The core scheduler charges each request it completes from
// host memory (rather than through the device) so buffer management is
// accounted either way.
type CPUAccounting interface {
	// ChargeRequest serializes the host-side cost of delivering an
	// n-byte request and calls done when the work retires.
	ChargeRequest(n int64, done func())
}

// Writer is optionally implemented by devices that accept writes (the
// write-once ingest extension). data may be nil for devices that do
// not materialize bytes; length governs the device work either way.
type Writer interface {
	WriteAt(disk int, off, length int64, data []byte, done func(err error)) error
}

// ErrBadRequest reports a structurally invalid read.
var ErrBadRequest = errors.New("blockdev: bad request")

// ErrReadOnly reports a write to a device without write support.
var ErrReadOnly = errors.New("blockdev: device is read-only")

// CheckRequest validates a read against a device.
func CheckRequest(d Device, disk int, off, length int64) error {
	if disk < 0 || disk >= d.Disks() {
		return ErrBadRequest
	}
	if off < 0 || length <= 0 || off+length > d.Capacity(disk) {
		return ErrBadRequest
	}
	return nil
}
