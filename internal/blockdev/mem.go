package blockdev

import (
	"errors"
	"sync"
	"time"

	"seqstream/internal/flight"
)

// MemDevice is an in-memory Device for real-time servers, examples,
// and tests: reads complete after an optional artificial latency on a
// timer goroutine. Data is a deterministic function of the offset so
// integrity can be checked without storing bytes.
type MemDevice struct {
	disks    int
	capacity int64
	latency  time.Duration
	fill     bool

	mu     sync.Mutex
	reads  int64
	writes int64
	fr     *flight.Recorder
}

// SetFlight attaches a flight recorder: each completed read records an
// OpDevRead on the disk's ring, timed by the recorder's clock. Call it
// before traffic; it is not synchronized with in-flight reads.
func (d *MemDevice) SetFlight(rec *flight.Recorder) { d.fr = rec }

var (
	_ Device     = (*MemDevice)(nil)
	_ Writer     = (*MemDevice)(nil)
	_ ReaderInto = (*MemDevice)(nil)
)

// NewMemDevice builds a device with disks drives of capacity bytes
// each. latency delays each completion; fill controls whether read
// data is materialized.
func NewMemDevice(disks int, capacity int64, latency time.Duration, fill bool) (*MemDevice, error) {
	if disks <= 0 {
		return nil, errors.New("blockdev: need at least one disk")
	}
	if capacity <= 0 {
		return nil, errors.New("blockdev: capacity must be positive")
	}
	if latency < 0 {
		return nil, errors.New("blockdev: latency must be >= 0")
	}
	return &MemDevice{disks: disks, capacity: capacity, latency: latency, fill: fill}, nil
}

// Disks implements Device.
func (d *MemDevice) Disks() int { return d.disks }

// Capacity implements Device.
func (d *MemDevice) Capacity(int) int64 { return d.capacity }

// Reads returns the number of completed reads.
func (d *MemDevice) Reads() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads
}

// Writes returns the number of completed writes.
func (d *MemDevice) Writes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// WriteAt implements Writer: the payload is discarded after the
// configured latency.
func (d *MemDevice) WriteAt(disk int, off, length int64, _ []byte, done func(error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	complete := func() {
		d.mu.Lock()
		d.writes++
		d.mu.Unlock()
		if done != nil {
			done(nil)
		}
	}
	if d.latency == 0 {
		complete()
		return nil
	}
	time.AfterFunc(d.latency, complete) //lint:allow simdet real-time test device
	return nil
}

// Pattern returns the deterministic byte stored at an offset.
func Pattern(disk int, off int64) byte {
	return byte((off + int64(disk)*131) % 251)
}

// ReadAt implements Device. The completion runs on a timer goroutine
// (or synchronously when latency is zero).
func (d *MemDevice) ReadAt(disk int, off, length int64, done func([]byte, error)) error {
	return d.read(disk, off, length, nil, done)
}

// ReadInto implements ReaderInto: the pattern is materialized into the
// caller's buffer instead of a fresh allocation.
func (d *MemDevice) ReadInto(disk int, off, length int64, buf []byte, done func([]byte, error)) error {
	if int64(len(buf)) != length {
		return ErrBadRequest
	}
	return d.read(disk, off, length, buf, done)
}

func (d *MemDevice) read(disk int, off, length int64, buf []byte, done func([]byte, error)) error {
	if err := CheckRequest(d, disk, off, length); err != nil {
		return err
	}
	var start time.Duration
	if d.fr != nil {
		start = d.fr.Now()
	}
	complete := func() {
		d.mu.Lock()
		d.reads++
		d.mu.Unlock()
		if fr := d.fr; fr != nil {
			now := fr.Now()
			fr.RingFor(disk).Record(flight.Event{Op: flight.OpDevRead, Disk: uint16(disk),
				Stream: flight.NoStream, Offset: off, Length: length,
				T: now, Dur: now - start})
		}
		if done == nil {
			return
		}
		var data []byte
		if d.fill {
			data = buf
			if data == nil {
				data = make([]byte, length)
			}
			for i := range data {
				data[i] = Pattern(disk, off+int64(i))
			}
		}
		done(data, nil)
	}
	if d.latency == 0 {
		complete()
		return nil
	}
	time.AfterFunc(d.latency, complete) //lint:allow simdet real-time test device
	return nil
}
