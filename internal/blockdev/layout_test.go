package blockdev

import "testing"

func TestReplicaDisks(t *testing.T) {
	cases := []struct {
		primary, replicas, disks int
		want                     []int
	}{
		{primary: 3, replicas: 1, disks: 8, want: []int{3}},
		{primary: 0, replicas: 2, disks: 64, want: []int{0, 32}},
		{primary: 5, replicas: 2, disks: 64, want: []int{5, 37}},
		{primary: 63, replicas: 2, disks: 64, want: []int{63, 31}},
		{primary: 1, replicas: 3, disks: 9, want: []int{1, 4, 7}},
		{primary: 0, replicas: 2, disks: 3, want: []int{0, 1}},
		{primary: 0, replicas: 4, disks: 2, want: []int{0, 1}}, // clamped
		{primary: 0, replicas: 2, disks: 1, want: []int{0}},
	}
	for _, c := range cases {
		got := ReplicaDisks(c.primary, c.replicas, c.disks)
		if len(got) != len(c.want) {
			t.Fatalf("ReplicaDisks(%d,%d,%d) = %v, want %v", c.primary, c.replicas, c.disks, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ReplicaDisks(%d,%d,%d) = %v, want %v", c.primary, c.replicas, c.disks, got, c.want)
			}
		}
	}
}

// TestReplicaDisksProperties checks the layout invariants over a sweep:
// the primary leads, members are distinct and in range, and the set
// size is min(replicas, disks).
func TestReplicaDisksProperties(t *testing.T) {
	for _, disks := range []int{1, 2, 3, 5, 8, 17, 64} {
		for replicas := 1; replicas <= 4; replicas++ {
			for p := 0; p < disks; p++ {
				set := ReplicaDisks(p, replicas, disks)
				wantLen := replicas
				if wantLen > disks {
					wantLen = disks
				}
				if wantLen < 1 {
					wantLen = 1
				}
				if len(set) != wantLen {
					t.Fatalf("ReplicaDisks(%d,%d,%d): len %d, want %d", p, replicas, disks, len(set), wantLen)
				}
				if set[0] != p {
					t.Fatalf("ReplicaDisks(%d,%d,%d): first member %d is not the primary", p, replicas, disks, set[0])
				}
				seen := make(map[int]bool)
				for _, d := range set {
					if d < 0 || d >= disks {
						t.Fatalf("ReplicaDisks(%d,%d,%d): member %d out of range", p, replicas, disks, d)
					}
					if seen[d] {
						t.Fatalf("ReplicaDisks(%d,%d,%d): duplicate member %d", p, replicas, disks, d)
					}
					seen[d] = true
				}
			}
		}
	}
}
