// Package blockdev abstracts the block device and clock the host-level
// stream scheduler runs against, so the same scheduler code drives both
// the discrete-event simulator and real files through the OS.
//
// Devices are asynchronous: Read/ReadAt complete through callbacks
// that may run on the simulation event loop (simulated devices) or on
// internal worker goroutines (real devices); callers that share state
// across completions must serialize accordingly — the sharded
// scheduler in internal/core re-locks the owning shard inside every
// completion.
//
// Devices that can read into caller-provided memory additionally
// implement ReaderInto. That is the hook the scheduler's pooled
// staging buffers ride on: the caller keeps the buffer checked out
// until the completion runs, even if it has given up on the request,
// because the device may write into the buffer right up to that
// point. Wrappers that cannot guarantee pass-through semantics (e.g.
// the fault-injecting ScriptDevice) simply do not advertise
// ReaderInto, and the scheduler falls back to device-allocated reads.
package blockdev
