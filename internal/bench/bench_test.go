package bench

import "testing"

// TestRunWithHealth smoke-tests the health-attached configuration: the
// run completes, the recorder and engine are live, and the result
// records both attachments.
func TestRunWithHealth(t *testing.T) {
	r, err := Run("health-smoke", Config{
		Disks: 2, Streams: 4, Requests: 16,
		Health: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HealthOn || !r.FlightOn {
		t.Fatalf("attachments not recorded: %+v", r)
	}
	if r.FlightEvents == 0 {
		t.Fatal("no flight events with the recorder on")
	}
	if r.TotalRequests != 64 || r.RequestsPerSec <= 0 {
		t.Fatalf("workload not measured: %+v", r)
	}
}

// TestRunHealthComparisonShape checks the comparison pairs the right
// configurations: recorder on in both, health only in the second.
func TestRunHealthComparisonShape(t *testing.T) {
	rep, err := RunHealthComparison(Config{Disks: 2, Streams: 4, Requests: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Budget != DefaultHealthBudget || rep.Trials != flightTrials {
		t.Fatalf("report defaults: %+v", rep)
	}
	if !rep.Off.FlightOn || rep.Off.HealthOn {
		t.Fatalf("off side misconfigured: %+v", rep.Off)
	}
	if !rep.On.FlightOn || !rep.On.HealthOn {
		t.Fatalf("on side misconfigured: %+v", rep.On)
	}
}
