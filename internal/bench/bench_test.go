package bench

import "testing"

// TestRunWithHealth smoke-tests the health-attached configuration: the
// run completes, the recorder and engine are live, and the result
// records both attachments.
func TestRunWithHealth(t *testing.T) {
	r, err := Run("health-smoke", Config{
		Disks: 2, Streams: 4, Requests: 16,
		Health: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HealthOn || !r.FlightOn {
		t.Fatalf("attachments not recorded: %+v", r)
	}
	if r.FlightEvents == 0 {
		t.Fatal("no flight events with the recorder on")
	}
	if r.TotalRequests != 64 || r.RequestsPerSec <= 0 {
		t.Fatalf("workload not measured: %+v", r)
	}
}

// TestRunHealthComparisonShape checks the comparison pairs the right
// configurations: recorder on in both, health only in the second.
func TestRunHealthComparisonShape(t *testing.T) {
	rep, err := RunHealthComparison(Config{Disks: 2, Streams: 4, Requests: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Budget != DefaultHealthBudget || rep.Trials != flightTrials {
		t.Fatalf("report defaults: %+v", rep)
	}
	if !rep.Off.FlightOn || rep.Off.HealthOn {
		t.Fatalf("off side misconfigured: %+v", rep.Off)
	}
	if !rep.On.FlightOn || !rep.On.HealthOn {
		t.Fatalf("on side misconfigured: %+v", rep.On)
	}
}

// TestRunSLOComparisonShape checks the SLO comparison pairs the right
// configurations: flight + health on in both, the SLO engine only in
// the second, and the scored-delivery count covering the workload.
func TestRunSLOComparisonShape(t *testing.T) {
	rep, err := RunSLOComparison(Config{Disks: 2, Streams: 4, Requests: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Budget != DefaultSLOBudget || rep.Trials != sloRounds {
		t.Fatalf("report defaults: %+v", rep)
	}
	if !rep.Off.FlightOn || !rep.Off.HealthOn || rep.Off.SLOOn || rep.Off.SLOScored != 0 {
		t.Fatalf("off side misconfigured: %+v", rep.Off)
	}
	if !rep.On.FlightOn || !rep.On.HealthOn || !rep.On.SLOOn {
		t.Fatalf("on side misconfigured: %+v", rep.On)
	}
	if rep.On.SLOScored != rep.On.TotalRequests {
		t.Fatalf("scored %d deliveries, want every one of %d", rep.On.SLOScored, rep.On.TotalRequests)
	}
}

// TestRunWireLegPayload smoke-tests one payload wire leg: real TCP,
// negotiated v2 frames, verified first responses, and real bytes in
// the throughput numbers.
func TestRunWireLegPayload(t *testing.T) {
	var verified int64
	r, err := runWireLeg("payload-smoke", Config{
		Disks: 2, Streams: 4, Requests: 16,
	}, 0, true, &verified)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRequests != 64 || r.MBPerSec <= 0 {
		t.Fatalf("workload not measured: %+v", r)
	}
	if verified != 4 {
		t.Fatalf("verified %d streams, want 4 (one first-response check per stream)", verified)
	}
}

// TestRunWireLegDataless checks the data-less leg drives the v1 wire
// (no payload negotiation, no data) with an explicit completion-batch
// override.
func TestRunWireLegDataless(t *testing.T) {
	r, err := runWireLeg("dataless-smoke", Config{
		Disks: 2, Streams: 4, Requests: 16,
	}, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRequests != 64 || r.RequestsPerSec <= 0 {
		t.Fatalf("workload not measured: %+v", r)
	}
}
