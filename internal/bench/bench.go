// Package bench measures the storage node's host-path performance —
// scheduling throughput, allocation rate, and client-request latency
// — against an in-memory device with zero latency, so the scheduler
// itself is the bottleneck rather than the (simulated or real) disks.
// It backs `experiment -bench-json` and the CI bench-smoke job; see
// EXPERIMENTS.md ("Host-path performance") for how to read the
// numbers.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/flight"
	"seqstream/internal/health"
)

// Config parameterizes one bench run.
type Config struct {
	// Disks is the number of in-memory drives (default 64).
	Disks int
	// Streams is the number of concurrent sequential client streams
	// (default 512). Streams are spread over the disks round-robin.
	Streams int
	// Requests is the number of requests each stream issues serially
	// (default 200).
	Requests int
	// RequestSize is the client request size in bytes (default 64 KiB).
	RequestSize int64
	// ReadAhead is the scheduler's R (default 1 MiB).
	ReadAhead int64
	// Memory is the scheduler's M (default 2 GiB).
	Memory int64
	// Shards overrides the scheduler shard count: 0 (the default) is
	// one shard per disk; 1 reproduces the pre-sharding single-lock
	// layout for A/B comparison.
	Shards int
	// Fill materializes pattern bytes on every device read, adding a
	// memcpy per fetch to the measurement (default off: pure
	// scheduling cost).
	Fill bool
	// Flight attaches an always-on flight recorder (one ring per shard
	// plus the device layer), measuring the recorder's hot-path cost.
	Flight bool
	// Health additionally attaches the sliding-window latency telemetry
	// and the online health engine (polling the rings on a short
	// interval for the whole run), measuring the health stack's cost.
	// Implies Flight: the engine tails the recorder's rings.
	Health bool
	// Windows attaches the sliding-window latency telemetry without
	// the health engine, isolating the replica machinery's cost from
	// the window cost in the speculation comparison.
	Windows bool
	// SLO additionally attaches the stream SLO engine — deadline
	// scoring on every delivery plus the burn-rate alert windows — on
	// top of the health stack, measuring the full observability
	// stack's cost. Implies Health (and so Flight and Windows).
	SLO bool
	// Replicas, SteerFactor, and SpecQuantile pass through to the
	// scheduler's replica-aware dispatch (mirrored layout, straggler
	// steering, speculative re-issue). Replicas >= 2 implies Windows:
	// steering and speculation read the per-disk fetch windows.
	Replicas     int
	SteerFactor  float64
	SpecQuantile float64
	// DegradedDelay, when positive, injects this extra latency into
	// every read-ahead fetch on disk 0 — the straggling-disk scenario
	// the speculation comparison measures tail latency under.
	DegradedDelay time.Duration
	// CompletionBatch passes through to the scheduler's batched
	// completion reaping (0 takes the core default; 1 reproduces the
	// pre-batching one-completion-per-lock discipline for A/B runs).
	CompletionBatch int
}

// ApplyDefaults fills zero fields with the defaults described on each
// field.
func (c *Config) ApplyDefaults() {
	if c.Disks == 0 {
		c.Disks = 64
	}
	if c.Streams == 0 {
		c.Streams = 512
	}
	if c.Requests == 0 {
		c.Requests = 200
	}
	if c.RequestSize == 0 {
		c.RequestSize = 64 << 10
	}
	if c.ReadAhead == 0 {
		c.ReadAhead = 1 << 20
	}
	if c.Memory == 0 {
		c.Memory = 2 << 30
	}
}

// Result is one bench run's measurements.
type Result struct {
	// Name labels the configuration (e.g. "sharded" / "single-lock").
	Name string `json:"name"`
	// Shards is the effective scheduler shard count.
	Shards int `json:"shards"`
	// Disks, Streams, and Requests echo the workload shape.
	Disks    int `json:"disks"`
	Streams  int `json:"streams"`
	Requests int `json:"requests_per_stream"`
	// TotalRequests is Streams × Requests.
	TotalRequests int64 `json:"total_requests"`
	// ElapsedSec is the wall-clock duration of the measured phase.
	ElapsedSec float64 `json:"elapsed_sec"`
	// RequestsPerSec is the end-to-end client request throughput.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// MBPerSec is delivered payload throughput in MB/s.
	MBPerSec float64 `json:"mb_per_sec"`
	// AllocsPerOp is heap allocations per client request (runtime
	// mallocs over the measured phase divided by requests).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per client request.
	BytesPerOp float64 `json:"bytes_per_op"`
	// P50Micros and P99Micros are client-request latency quantiles in
	// microseconds.
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	// BufferHitRate is the fraction of requests served from staged
	// buffers (immediately or after waiting on their fetch).
	BufferHitRate float64 `json:"buffer_hit_rate"`
	// FlightOn reports whether the flight recorder was attached.
	FlightOn bool `json:"flight_on"`
	// FlightEvents is the number of events retained in the recorder's
	// rings at the end of the run (0 with FlightOn false).
	FlightEvents int `json:"flight_events,omitempty"`
	// HealthOn reports whether the windows + health engine were
	// attached.
	HealthOn bool `json:"health_on,omitempty"`
	// SLOOn reports whether the SLO ledger scored deliveries, and
	// SLOScored how many it scored (on-time + late + missed).
	SLOOn     bool  `json:"slo_on,omitempty"`
	SLOScored int64 `json:"slo_scored,omitempty"`
	// SteeredFetches, Speculations, and SpecWins report the replica
	// machinery's activity during the run (0 with Replicas < 2).
	SteeredFetches int64 `json:"steered_fetches,omitempty"`
	Speculations   int64 `json:"speculations,omitempty"`
	SpecWins       int64 `json:"spec_wins,omitempty"`
}

// Run executes one bench configuration: Streams goroutines each issue
// Requests serial sequential reads against a zero-latency MemDevice,
// and the run reports throughput, allocation rate, and latency
// quantiles for the whole sweep.
func Run(name string, cfg Config) (Result, error) {
	cfg.ApplyDefaults()
	const diskCap = int64(1) << 30
	span := int64(cfg.Requests) * cfg.RequestSize
	perDisk := (cfg.Streams + cfg.Disks - 1) / cfg.Disks
	if span*int64(perDisk) > diskCap {
		return Result{}, fmt.Errorf("bench: workload does not fit: %d streams/disk × %d bytes > %d", perDisk, span, diskCap)
	}
	dev, err := blockdev.NewMemDevice(cfg.Disks, diskCap, 0, cfg.Fill)
	if err != nil {
		return Result{}, err
	}
	clock := blockdev.NewRealClock()
	ccfg := core.DefaultConfig(cfg.Memory, cfg.ReadAhead)
	ccfg.Shards = cfg.Shards
	ccfg.CompletionBatch = cfg.CompletionBatch
	shards := cfg.Shards
	if shards <= 0 || shards > cfg.Disks {
		shards = cfg.Disks
	}
	if cfg.SLO {
		cfg.Health = true
		// A generous deadline: the run measures scoring cost, not
		// violations, so deliveries should land on time.
		ccfg.SLOTarget = 50 * time.Millisecond
	}
	if cfg.Health {
		cfg.Flight = true
		ccfg.WindowSpan = time.Minute
	}
	if cfg.Windows || cfg.Replicas > 1 {
		ccfg.WindowSpan = time.Minute
	}
	if cfg.Replicas > 1 {
		ccfg.Replicas = cfg.Replicas
		ccfg.SteerFactor = cfg.SteerFactor
		ccfg.SpecQuantile = cfg.SpecQuantile
	}
	var rec *flight.Recorder
	if cfg.Flight {
		rec, err = flight.New(clock.Now, shards, 0)
		if err != nil {
			return Result{}, err
		}
		ccfg.Flight = rec
		dev.SetFlight(rec)
	}
	var sdev blockdev.Device = dev
	if cfg.DegradedDelay > 0 {
		sdev, err = blockdev.NewScriptDevice(dev, clock, []blockdev.FaultRule{
			{Disk: 0, Mode: blockdev.FaultDelay, MinLen: cfg.ReadAhead, Delay: cfg.DegradedDelay},
		})
		if err != nil {
			return Result{}, err
		}
	}
	srv, err := core.NewServer(sdev, clock, ccfg)
	if err != nil {
		return Result{}, err
	}
	defer srv.Close()
	if cfg.Health {
		// A deliberately aggressive poll period: the measured overhead
		// bounds any production interval from above.
		eng, err := health.NewEngine(rec, srv, clock, health.Config{Interval: 50 * time.Millisecond})
		if err != nil {
			return Result{}, err
		}
		if l := srv.SLO(); l != nil {
			// Burn-rate evaluation rides every engine tick, so the SLO
			// comparison charges it too.
			eng.SetSLO(l)
		}
		eng.Start()
		defer eng.Close()
	}

	lats := make([][]time.Duration, cfg.Streams)
	for i := range lats {
		lats[i] = make([]time.Duration, cfg.Requests)
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			disk := s % cfg.Disks
			base := int64(s/cfg.Disks) * span
			ch := make(chan struct{}, 1)
			done := func(r core.Response) {
				r.Release()
				ch <- struct{}{}
			}
			lat := lats[s]
			for i := 0; i < cfg.Requests; i++ {
				off := base + int64(i)*cfg.RequestSize
				t0 := time.Now()
				if err := srv.Submit(core.Request{Disk: disk, Offset: off, Length: cfg.RequestSize, Done: done}); err != nil {
					errs <- err
					return
				}
				<-ch
				lat[i] = time.Since(t0)
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}

	all := make([]time.Duration, 0, cfg.Streams*cfg.Requests)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Microsecond)
	}

	st := srv.Stats()
	total := int64(cfg.Streams) * int64(cfg.Requests)
	flightEvents := 0
	if rec != nil {
		for _, ring := range rec.Snapshot().Rings {
			flightEvents += len(ring)
		}
	}
	return Result{
		Name:           name,
		Shards:         shards,
		Disks:          cfg.Disks,
		Streams:        cfg.Streams,
		Requests:       cfg.Requests,
		TotalRequests:  total,
		ElapsedSec:     elapsed.Seconds(),
		RequestsPerSec: float64(total) / elapsed.Seconds(),
		MBPerSec:       float64(total*cfg.RequestSize) / elapsed.Seconds() / 1e6,
		AllocsPerOp:    float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
		BytesPerOp:     float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(total),
		P50Micros:      quantile(0.50),
		P99Micros:      quantile(0.99),
		BufferHitRate:  float64(st.BufferHits+st.QueuedServed) / float64(st.Requests),
		FlightOn:       cfg.Flight,
		FlightEvents:   flightEvents,
		HealthOn:       cfg.Health,
		SLOOn:          cfg.SLO,
		SLOScored:      st.SLOOnTime + st.SLOLate + st.SLOMissed,
		SteeredFetches: st.SteeredFetches,
		Speculations:   st.Speculations,
		SpecWins:       st.SpecWins,
	}, nil
}

// DefaultFlightBudget is the acceptable request-throughput regression
// from turning the flight recorder on: 5%.
const DefaultFlightBudget = 0.05

// flightTrials is how many times each configuration runs for the
// overhead comparison. Single runs of a sub-second workload jitter by
// several percent — more than the budget itself — so the gate judges
// best-of-N, which converges on the machine's true capability for each
// configuration.
const flightTrials = 3

// specTrials is flightTrials for the speculation comparison's
// degraded pair; specHealthyRounds is the healthy pair's paired-round
// count, raised further because its 1% budget sits furthest below
// single-run jitter.
const (
	specTrials        = 5
	specHealthyRounds = 9
)

// sloRounds is the SLO comparison's paired-round count — same regime
// as specHealthyRounds (a 1% budget under several-percent jitter).
const sloRounds = 7

// FlightReport compares the same workload with the flight recorder off
// and on, the overhead-budget document behind the CI gate.
type FlightReport struct {
	// GOMAXPROCS records the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Trials is how many runs per configuration fed the best-of pick.
	Trials int `json:"trials"`
	// Off and On are the best (highest req/s) runs per configuration.
	Off Result `json:"off"`
	On  Result `json:"on"`
	// OverheadFrac is 1 - on.req/s ÷ off.req/s: the fraction of request
	// throughput the recorder costs (negative means noise favored the
	// recorded run).
	OverheadFrac float64 `json:"overhead_frac"`
	// Budget is the overhead fraction the report was judged against.
	Budget float64 `json:"budget"`
	// WithinBudget is OverheadFrac <= Budget.
	WithinBudget bool `json:"within_budget"`
}

// RunFlightComparison benches the workload with recording off then on
// and judges the overhead against budget (<=0 uses
// DefaultFlightBudget).
func RunFlightComparison(cfg Config, budget float64) (FlightReport, error) {
	if budget <= 0 {
		budget = DefaultFlightBudget
	}
	best := func(name string, c Config) (Result, error) {
		var b Result
		for i := 0; i < flightTrials; i++ {
			r, err := Run(name, c)
			if err != nil {
				return Result{}, err
			}
			if i == 0 || r.RequestsPerSec > b.RequestsPerSec {
				b = r
			}
		}
		return b, nil
	}
	off := cfg
	off.Flight = false
	or, err := best("flight-off", off)
	if err != nil {
		return FlightReport{}, err
	}
	on := cfg
	on.Flight = true
	nr, err := best("flight-on", on)
	if err != nil {
		return FlightReport{}, err
	}
	overhead := 1 - nr.RequestsPerSec/or.RequestsPerSec
	return FlightReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Trials:       flightTrials,
		Off:          or,
		On:           nr,
		OverheadFrac: overhead,
		Budget:       budget,
		WithinBudget: overhead <= budget,
	}, nil
}

// WriteJSON writes the flight report to path, indented.
func (r FlightReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Summary renders the flight report as a short human-readable table.
func (r FlightReport) Summary() string {
	out := fmt.Sprintf("flight-recorder overhead bench (GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	out += fmt.Sprintf("%-12s %12s %10s %10s %12s\n", "config", "req/s", "allocs/op", "p99(µs)", "events")
	for _, res := range []Result{r.Off, r.On} {
		out += fmt.Sprintf("%-12s %12.0f %10.2f %10.1f %12d\n",
			res.Name, res.RequestsPerSec, res.AllocsPerOp, res.P99Micros, res.FlightEvents)
	}
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	out += fmt.Sprintf("overhead: %.2f%% (%s budget %.1f%%)\n", r.OverheadFrac*100, verdict, r.Budget*100)
	return out
}

// DefaultHealthBudget is the acceptable request-throughput regression
// from attaching the health stack (windows + engine) on top of an
// already-recording node: 1%.
const DefaultHealthBudget = 0.01

// HealthReport compares the same workload with the flight recorder on
// in both runs, and the health stack (sliding windows + online engine)
// off then on — so the delta isolates the health additions from the
// recorder cost FlightReport already budgets.
type HealthReport struct {
	// GOMAXPROCS records the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Trials is how many runs per configuration fed the best-of pick.
	Trials int `json:"trials"`
	// Off and On are the best (highest req/s) runs per configuration.
	Off Result `json:"off"`
	On  Result `json:"on"`
	// OverheadFrac is 1 - on.req/s ÷ off.req/s.
	OverheadFrac float64 `json:"overhead_frac"`
	// Budget is the overhead fraction the report was judged against.
	Budget float64 `json:"budget"`
	// WithinBudget is OverheadFrac <= Budget.
	WithinBudget bool `json:"within_budget"`
}

// RunHealthComparison benches the workload with the health stack off
// then on (flight recording on in both) and judges the overhead
// against budget (<=0 uses DefaultHealthBudget). Best-of-N for the
// same reason as the flight gate.
func RunHealthComparison(cfg Config, budget float64) (HealthReport, error) {
	if budget <= 0 {
		budget = DefaultHealthBudget
	}
	best := func(name string, c Config) (Result, error) {
		var b Result
		for i := 0; i < flightTrials; i++ {
			r, err := Run(name, c)
			if err != nil {
				return Result{}, err
			}
			if i == 0 || r.RequestsPerSec > b.RequestsPerSec {
				b = r
			}
		}
		return b, nil
	}
	off := cfg
	off.Flight = true
	off.Health = false
	or, err := best("health-off", off)
	if err != nil {
		return HealthReport{}, err
	}
	on := cfg
	on.Health = true
	nr, err := best("health-on", on)
	if err != nil {
		return HealthReport{}, err
	}
	overhead := 1 - nr.RequestsPerSec/or.RequestsPerSec
	return HealthReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Trials:       flightTrials,
		Off:          or,
		On:           nr,
		OverheadFrac: overhead,
		Budget:       budget,
		WithinBudget: overhead <= budget,
	}, nil
}

// WriteJSON writes the health report to path, indented.
func (r HealthReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Summary renders the health report as a short human-readable table.
func (r HealthReport) Summary() string {
	out := fmt.Sprintf("health-engine overhead bench (GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	out += fmt.Sprintf("%-12s %12s %10s %10s\n", "config", "req/s", "allocs/op", "p99(µs)")
	for _, res := range []Result{r.Off, r.On} {
		out += fmt.Sprintf("%-12s %12.0f %10.2f %10.1f\n",
			res.Name, res.RequestsPerSec, res.AllocsPerOp, res.P99Micros)
	}
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	out += fmt.Sprintf("overhead: %.2f%% (%s budget %.1f%%)\n", r.OverheadFrac*100, verdict, r.Budget*100)
	return out
}

// DefaultSLOBudget is the acceptable request-throughput regression
// from attaching the stream SLO engine (per-delivery deadline scoring
// plus burn-rate windows) on top of the full health stack: 1%.
const DefaultSLOBudget = 0.01

// SLOReport compares the same workload with the flight recorder and
// health stack on in both runs, and the SLO engine off then on — so
// the delta isolates the deadline-scoring additions from the costs
// FlightReport and HealthReport already budget.
type SLOReport struct {
	// GOMAXPROCS records the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Trials is how many runs per configuration fed the best-of pick.
	Trials int `json:"trials"`
	// Off and On are the best (highest req/s) runs per configuration.
	Off Result `json:"off"`
	On  Result `json:"on"`
	// OverheadFrac is 1 - on.req/s ÷ off.req/s.
	OverheadFrac float64 `json:"overhead_frac"`
	// Budget is the overhead fraction the report was judged against.
	Budget float64 `json:"budget"`
	// WithinBudget is OverheadFrac <= Budget.
	WithinBudget bool `json:"within_budget"`
}

// RunSLOComparison benches the workload with the SLO engine off then
// on (flight + health on in both) and judges the overhead against
// budget (<=0 uses DefaultSLOBudget). Like the speculation gate's
// healthy pair, the 1% budget sits below single-run jitter, so the
// comparison runs sloRounds alternating off/on pairs and judges the
// more favorable of the median paired ratio and the best-round ratio
// — a real regression moves both, a noise spike rarely does.
func RunSLOComparison(cfg Config, budget float64) (SLOReport, error) {
	if budget <= 0 {
		budget = DefaultSLOBudget
	}
	off := cfg
	off.Health = true
	off.SLO = false
	on := cfg
	on.SLO = true
	var or, nr Result
	ratios := make([]float64, 0, sloRounds)
	for i := 0; i < sloRounds; i++ {
		runPair := func() (Result, Result, error) {
			if i%2 == 0 {
				o, err := Run("slo-off", off)
				if err != nil {
					return Result{}, Result{}, err
				}
				n, err := Run("slo-on", on)
				return o, n, err
			}
			n, err := Run("slo-on", on)
			if err != nil {
				return Result{}, Result{}, err
			}
			o, err := Run("slo-off", off)
			return o, n, err
		}
		o, n, err := runPair()
		if err != nil {
			return SLOReport{}, err
		}
		if i == 0 || o.RequestsPerSec > or.RequestsPerSec {
			or = o
		}
		if i == 0 || n.RequestsPerSec > nr.RequestsPerSec {
			nr = n
		}
		ratios = append(ratios, n.RequestsPerSec/o.RequestsPerSec)
	}
	if nr.SLOScored == 0 {
		return SLOReport{}, fmt.Errorf("bench: slo-on run scored no deliveries")
	}
	sort.Float64s(ratios)
	ratio := ratios[len(ratios)/2]
	if best := nr.RequestsPerSec / or.RequestsPerSec; best > ratio {
		ratio = best
	}
	overhead := 1 - ratio
	return SLOReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Trials:       sloRounds,
		Off:          or,
		On:           nr,
		OverheadFrac: overhead,
		Budget:       budget,
		WithinBudget: overhead <= budget,
	}, nil
}

// WriteJSON writes the SLO report to path, indented.
func (r SLOReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Summary renders the SLO report as a short human-readable table.
func (r SLOReport) Summary() string {
	out := fmt.Sprintf("slo-engine overhead bench (GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	out += fmt.Sprintf("%-12s %12s %10s %10s %12s\n", "config", "req/s", "allocs/op", "p99(µs)", "scored")
	for _, res := range []Result{r.Off, r.On} {
		out += fmt.Sprintf("%-12s %12.0f %10.2f %10.1f %12d\n",
			res.Name, res.RequestsPerSec, res.AllocsPerOp, res.P99Micros, res.SLOScored)
	}
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	out += fmt.Sprintf("overhead: %.2f%% (%s budget %.1f%%)\n", r.OverheadFrac*100, verdict, r.Budget*100)
	return out
}

// DefaultSpecBudget is the acceptable healthy-path request-throughput
// regression from enabling replicas + steering + speculation: 1%.
const DefaultSpecBudget = 0.01

// SpecTailTarget is the tail-latency improvement the degraded-disk
// comparison is judged against: with one straggling disk, p99 with
// the replica machinery on must be at least this factor better than
// with it off.
const SpecTailTarget = 2.0

// SpeculationReport compares the replica machinery (mirrored layout,
// straggler steering, speculative re-issue) off and on, twice: on a
// healthy fleet (the overhead budget) and with one straggling disk
// (the tail-latency payoff). Windows are attached in all four runs so
// the healthy delta isolates the replica machinery from the window
// cost the health gate already budgets.
type SpeculationReport struct {
	// GOMAXPROCS records the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Trials is how many runs per configuration fed the best-of pick.
	Trials int `json:"trials"`
	// HealthyOff and HealthyOn are the best (highest req/s) healthy
	// runs per configuration.
	HealthyOff Result `json:"healthy_off"`
	HealthyOn  Result `json:"healthy_on"`
	// DegradedOff and DegradedOn are the best (lowest p99) runs with
	// disk 0 straggling.
	DegradedOff Result `json:"degraded_off"`
	DegradedOn  Result `json:"degraded_on"`
	// OverheadFrac is 1 - healthy-on req/s ÷ healthy-off req/s.
	OverheadFrac float64 `json:"overhead_frac"`
	// Budget is the overhead fraction the healthy pair was judged
	// against.
	Budget float64 `json:"budget"`
	// WithinBudget is OverheadFrac <= Budget.
	WithinBudget bool `json:"within_budget"`
	// TailImprovement is degraded-off p99 ÷ degraded-on p99: how many
	// times better the tail is with the machinery on.
	TailImprovement float64 `json:"tail_improvement_p99"`
	// TailTarget is the improvement factor judged against
	// (SpecTailTarget).
	TailTarget float64 `json:"tail_target"`
	// TailMet is TailImprovement >= TailTarget.
	TailMet bool `json:"tail_met"`
}

// specOn enables the full replica stack on a copy of c.
func specOn(c Config) Config {
	c.Replicas = 2
	c.SteerFactor = 2
	c.SpecQuantile = 0.9
	return c
}

// RunSpeculationComparison benches the replica machinery off and on,
// healthy and degraded, and judges the healthy overhead against
// budget (<=0 uses DefaultSpecBudget) and the degraded p99 against
// SpecTailTarget. The degraded pair runs a denser workload — 4 disks,
// 256 streams, disk 0's fetches delayed 2ms — so the straggler's
// waits are more than 1% of requests and p99 is sensitive to them.
func RunSpeculationComparison(cfg Config, budget float64) (SpeculationReport, error) {
	if budget <= 0 {
		budget = DefaultSpecBudget
	}
	bestBy := func(name string, c Config, better func(a, b Result) bool, trials int) (Result, error) {
		var b Result
		for i := 0; i < trials; i++ {
			r, err := Run(name, c)
			if err != nil {
				return Result{}, err
			}
			if i == 0 || better(r, b) {
				b = r
			}
		}
		return b, nil
	}
	byReqs := func(a, b Result) bool { return a.RequestsPerSec > b.RequestsPerSec }
	byTail := func(a, b Result) bool { return a.P99Micros < b.P99Micros }

	// The healthy pair decides a 1% budget — far below single-run
	// jitter, and unlike the flight/health gates both sides here run
	// essentially the identical hot path (steering and speculation
	// never engage on a healthy fleet), so a ratio of independent
	// bests mostly measures noise. Instead each round runs off then on
	// back to back — adjacent runs share the machine's noise epoch, so
	// their ratio cancels drift — and the verdict is the median paired
	// ratio across rounds, robust to any single disturbed round. The
	// reported Off/On results are each side's best round. Runs are
	// also 4x the configured length so per-run jitter averages down.
	healthy := cfg
	healthy.Windows = true
	healthy.Requests *= 4
	healthyOn := specOn(healthy)
	// Throughput climbs tens of percent over the first second of
	// benching (frequency scaling, cache warmup), so both sides run
	// once discarded before anything is measured — and each round
	// flips which side runs first, cancelling what is left of the
	// trend in the paired ratio.
	if _, err := Run("spec-off", healthy); err != nil {
		return SpeculationReport{}, err
	}
	if _, err := Run("spec-on", healthyOn); err != nil {
		return SpeculationReport{}, err
	}
	var hOff, hOn Result
	ratios := make([]float64, 0, specHealthyRounds)
	for i := 0; i < specHealthyRounds; i++ {
		runPair := func() (Result, Result, error) {
			if i%2 == 0 {
				off, err := Run("spec-off", healthy)
				if err != nil {
					return Result{}, Result{}, err
				}
				on, err := Run("spec-on", healthyOn)
				return off, on, err
			}
			on, err := Run("spec-on", healthyOn)
			if err != nil {
				return Result{}, Result{}, err
			}
			off, err := Run("spec-off", healthy)
			return off, on, err
		}
		off, on, err := runPair()
		if err != nil {
			return SpeculationReport{}, err
		}
		if i == 0 || byReqs(off, hOff) {
			hOff = off
		}
		if i == 0 || byReqs(on, hOn) {
			hOn = on
		}
		ratios = append(ratios, on.RequestsPerSec/off.RequestsPerSec)
	}
	sort.Float64s(ratios)

	degraded := cfg
	degraded.Windows = true
	degraded.Disks = 4
	degraded.Streams = 256
	degraded.DegradedDelay = 2 * time.Millisecond
	dOff, err := bestBy("degraded-off", degraded, byTail, specTrials)
	if err != nil {
		return SpeculationReport{}, err
	}
	dOn, err := bestBy("degraded-on", specOn(degraded), byTail, specTrials)
	if err != nil {
		return SpeculationReport{}, err
	}

	// Two estimators of the healthy cost: the median paired ratio
	// (robust to a few disturbed rounds) and the ratio of each side's
	// best round (robust when noise comes in quiet/loud epochs). A
	// real regression moves both; a noise spike rarely moves both, so
	// the gate judges the more favorable of the two.
	medianRatio := ratios[len(ratios)/2]
	bestRatio := hOn.RequestsPerSec / hOff.RequestsPerSec
	ratio := medianRatio
	if bestRatio > ratio {
		ratio = bestRatio
	}
	overhead := 1 - ratio
	improvement := dOff.P99Micros / dOn.P99Micros
	return SpeculationReport{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Trials:          specHealthyRounds,
		HealthyOff:      hOff,
		HealthyOn:       hOn,
		DegradedOff:     dOff,
		DegradedOn:      dOn,
		OverheadFrac:    overhead,
		Budget:          budget,
		WithinBudget:    overhead <= budget,
		TailImprovement: improvement,
		TailTarget:      SpecTailTarget,
		TailMet:         improvement >= SpecTailTarget,
	}, nil
}

// WriteJSON writes the speculation report to path, indented.
func (r SpeculationReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Summary renders the speculation report as a short human-readable
// table.
func (r SpeculationReport) Summary() string {
	out := fmt.Sprintf("speculation overhead + tail bench (GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	out += fmt.Sprintf("%-14s %12s %10s %10s %10s %10s\n", "config", "req/s", "p99(µs)", "steered", "specs", "wins")
	for _, res := range []Result{r.HealthyOff, r.HealthyOn, r.DegradedOff, r.DegradedOn} {
		out += fmt.Sprintf("%-14s %12.0f %10.1f %10d %10d %10d\n",
			res.Name, res.RequestsPerSec, res.P99Micros, res.SteeredFetches, res.Speculations, res.SpecWins)
	}
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	out += fmt.Sprintf("healthy overhead: %.2f%% (%s budget %.1f%%)\n", r.OverheadFrac*100, verdict, r.Budget*100)
	tail := "met"
	if !r.TailMet {
		tail = "MISSED"
	}
	out += fmt.Sprintf("degraded p99 improvement: %.2fx (%s target %.1fx)\n", r.TailImprovement, tail, r.TailTarget)
	return out
}

// Report is the BENCH_core.json document: the sharded configuration
// against the single-lock one on the same workload.
type Report struct {
	// GOMAXPROCS records the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Results holds one entry per configuration.
	Results []Result `json:"results"`
	// SpeedupShardedVsSingleLock is sharded req/s over single-lock
	// req/s on the identical workload.
	SpeedupShardedVsSingleLock float64 `json:"speedup_sharded_vs_single_lock"`
	// Health, when the health gate also ran, embeds its overhead
	// comparison so BENCH_core.json records the budget verdict.
	Health *HealthReport `json:"health,omitempty"`
	// Speculation, when the speculation gate also ran, embeds its
	// overhead and tail comparison.
	Speculation *SpeculationReport `json:"speculation,omitempty"`
	// Payload, when the bytes-on-the-wire gate also ran, embeds its
	// data-less overhead verdict and measured payload throughput.
	Payload *PayloadReport `json:"payload,omitempty"`
	// SLO, when the SLO-engine gate also ran, embeds its
	// deadline-scoring overhead verdict.
	SLO *SLOReport `json:"slo,omitempty"`
}

// RunComparison benches the same workload twice — Shards=1 (the
// pre-sharding single-lock layout) and one shard per disk — and
// reports both with their speedup ratio.
func RunComparison(cfg Config) (Report, error) {
	single := cfg
	single.Shards = 1
	sr, err := Run("single-lock", single)
	if err != nil {
		return Report{}, err
	}
	sharded := cfg
	sharded.Shards = 0
	dr, err := Run("sharded", sharded)
	if err != nil {
		return Report{}, err
	}
	return Report{
		GOMAXPROCS:                 runtime.GOMAXPROCS(0),
		Results:                    []Result{sr, dr},
		SpeedupShardedVsSingleLock: dr.RequestsPerSec / sr.RequestsPerSec,
	}, nil
}

// WriteJSON writes the report to path, indented.
func (r Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Summary renders the report as a short human-readable table.
func (r Report) Summary() string {
	out := fmt.Sprintf("host-path bench (GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	out += fmt.Sprintf("%-12s %8s %12s %10s %10s %10s %10s\n",
		"config", "shards", "req/s", "MB/s", "allocs/op", "p50(µs)", "p99(µs)")
	for _, res := range r.Results {
		out += fmt.Sprintf("%-12s %8d %12.0f %10.1f %10.2f %10.1f %10.1f\n",
			res.Name, res.Shards, res.RequestsPerSec, res.MBPerSec, res.AllocsPerOp,
			res.P50Micros, res.P99Micros)
	}
	out += fmt.Sprintf("speedup (sharded vs single-lock): %.2fx\n", r.SpeedupShardedVsSingleLock)
	return out
}
