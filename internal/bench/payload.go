package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/metrics"
	"seqstream/internal/netserve"
)

// This file holds the bytes-on-the-wire benchmark: unlike the
// host-path runs in bench.go, these legs drive a real netserve server
// over loopback TCP — headers framed, payloads (when negotiated)
// handed off zero-copy from staging buffers to writev — so the
// numbers include the full delivery path the paper's clients see.

// DefaultPayloadBudget is the acceptable data-less request-throughput
// regression from the payload-capable delivery path: 5%. The gate
// compares batched completion reaping (the default) against
// CompletionBatch=1 (the pre-batching completion discipline) on the
// identical data-less wire workload — the closest expressible
// in-binary baseline for "the delivery-path rework must not slow the
// paper's data-less mode down".
const DefaultPayloadBudget = 0.05

// payloadTrials is best-of-N for the wire legs; loopback TCP adds
// scheduler noise on top of the usual bench jitter.
const payloadTrials = 3

// PayloadReport is the bytes-on-the-wire document: two data-less legs
// (unbatched baseline vs batched reaping) deciding the overhead gate,
// plus the payload leg measuring real delivered MB/s with per-stream
// pattern verification.
type PayloadReport struct {
	// GOMAXPROCS records the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Trials is how many runs per configuration fed the best-of pick.
	Trials int `json:"trials"`
	// Baseline is the best data-less run with CompletionBatch=1 (the
	// pre-batching completion discipline).
	Baseline Result `json:"dataless_unbatched"`
	// Batched is the best data-less run with default batched reaping.
	Batched Result `json:"dataless_batched"`
	// Payload is the best payload-mode run: v2-negotiated clients,
	// FlagWantData on every request, bytes verified per stream. Its
	// MBPerSec is real payload bytes moved over loopback TCP.
	Payload Result `json:"payload"`
	// VerifiedStreams counts streams whose first response's bytes were
	// checked against the device pattern during the payload leg (one
	// check per stream, so verification cost stays out of the
	// steady-state measurement).
	VerifiedStreams int64 `json:"verified_streams"`
	// OverheadFrac is 1 - batched req/s ÷ baseline req/s: what batched
	// reaping (and the payload-capable write path both legs share)
	// costs data-less mode.
	OverheadFrac float64 `json:"overhead_frac"`
	// Budget is the overhead fraction the report was judged against.
	Budget float64 `json:"budget"`
	// WithinBudget is OverheadFrac <= Budget.
	WithinBudget bool `json:"within_budget"`
}

// runWireLeg runs one wire-path configuration: a netserve server over
// an in-memory device, one client connection per disk, each driving
// its share of the streams with synchronous sequential reads.
// completionBatch passes through to core.Config.CompletionBatch (0
// takes the default); payload negotiates v2 frames, requests data on
// every read, and pattern-checks each stream's first response.
func runWireLeg(name string, cfg Config, completionBatch int, payload bool, verified *int64) (Result, error) {
	cfg.ApplyDefaults()
	const diskCap = int64(1) << 30
	perDisk := cfg.Streams / cfg.Disks
	if perDisk == 0 {
		return Result{}, fmt.Errorf("bench: %d streams over %d disks leaves some disks idle", cfg.Streams, cfg.Disks)
	}
	streams := perDisk * cfg.Disks
	if span := int64(cfg.Requests) * cfg.RequestSize; span*int64(perDisk) > diskCap {
		return Result{}, fmt.Errorf("bench: workload does not fit: %d streams/disk × %d bytes > %d", perDisk, span, diskCap)
	}
	dev, err := blockdev.NewMemDevice(cfg.Disks, diskCap, 0, payload)
	if err != nil {
		return Result{}, err
	}
	ccfg := core.DefaultConfig(cfg.Memory, cfg.ReadAhead)
	ccfg.CompletionBatch = completionBatch
	node, err := core.NewServer(dev, blockdev.NewRealClock(), ccfg)
	if err != nil {
		return Result{}, err
	}
	defer node.Close()
	srv, err := netserve.NewServerOpts(node, "127.0.0.1:0", netserve.ServerOptions{Payload: payload})
	if err != nil {
		return Result{}, err
	}
	defer srv.Close()

	clients := make([]*netserve.Client, cfg.Disks)
	for d := range clients {
		c, err := netserve.DialOpts(srv.Addr(), netserve.ClientOptions{Payload: payload})
		if err != nil {
			return Result{}, err
		}
		defer c.Close()
		if payload && !c.Payload() {
			return Result{}, fmt.Errorf("bench: payload extension not granted")
		}
		clients[d] = c
	}

	var flags uint16
	if payload {
		flags = netserve.FlagWantData
	}
	// Pattern-check each stream's first response only: a framing or
	// hand-off bug corrupts every frame alike, and one check per
	// stream keeps the byte loop out of the steady state.
	checked := make([]atomic.Bool, streams)
	makeCheck := func(disk int) func(int, *netserve.Response) error {
		if !payload {
			return nil
		}
		return func(stream int, resp *netserve.Response) error {
			if checked[disk*perDisk+stream].Swap(true) {
				return nil
			}
			if resp.Flags&netserve.RespPayload == 0 || int64(len(resp.Data)) != cfg.RequestSize {
				return fmt.Errorf("bench: disk %d stream %d: bad payload frame (flags %#x, %d bytes)",
					disk, stream, resp.Flags, len(resp.Data))
			}
			for i, got := range resp.Data {
				if want := blockdev.Pattern(disk, resp.Offset+int64(i)); got != want {
					return fmt.Errorf("bench: disk %d stream %d offset %d byte %d: got %#x want %#x",
						disk, stream, resp.Offset, i, got, want)
				}
			}
			if verified != nil {
				atomic.AddInt64(verified, 1)
			}
			return nil
		}
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Disks)
	for d, c := range clients {
		wg.Add(1)
		go func(d int, c *netserve.Client) {
			defer wg.Done()
			err := c.RunStreamsFunc(uint16(d), diskCap, perDisk, cfg.Requests,
				cfg.RequestSize, flags, makeCheck(d))
			if err != nil {
				errs <- err
			}
		}(d, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}

	var lat metrics.LatencySummary
	for _, c := range clients {
		merged := c.Recorder().MergedLatency()
		lat.Merge(&merged)
	}
	st := node.Stats()
	total := int64(streams) * int64(cfg.Requests)
	return Result{
		Name:           name,
		Shards:         cfg.Disks,
		Disks:          cfg.Disks,
		Streams:        streams,
		Requests:       cfg.Requests,
		TotalRequests:  total,
		ElapsedSec:     elapsed.Seconds(),
		RequestsPerSec: float64(total) / elapsed.Seconds(),
		MBPerSec:       float64(total*cfg.RequestSize) / elapsed.Seconds() / 1e6,
		AllocsPerOp:    float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
		BytesPerOp:     float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(total),
		P50Micros:      float64(lat.Quantile(0.50)) / float64(time.Microsecond),
		P99Micros:      float64(lat.Quantile(0.99)) / float64(time.Microsecond),
		BufferHitRate:  float64(st.BufferHits+st.QueuedServed) / float64(st.Requests),
	}, nil
}

// RunPayloadComparison benches the wire path three ways — data-less
// with unbatched completions, data-less with batched reaping, and
// payload mode with verified bytes — and judges the data-less
// overhead against budget (<=0 uses DefaultPayloadBudget).
func RunPayloadComparison(cfg Config, budget float64) (PayloadReport, error) {
	if budget <= 0 {
		budget = DefaultPayloadBudget
	}
	best := func(name string, batch int, payload bool, verified *int64, better func(a, b Result) bool) (Result, error) {
		var b Result
		for i := 0; i < payloadTrials; i++ {
			r, err := runWireLeg(name, cfg, batch, payload, verified)
			if err != nil {
				return Result{}, err
			}
			if i == 0 || better(r, b) {
				b = r
			}
		}
		return b, nil
	}
	byReqs := func(a, b Result) bool { return a.RequestsPerSec > b.RequestsPerSec }

	baseline, err := best("dataless-batch1", 1, false, nil, byReqs)
	if err != nil {
		return PayloadReport{}, err
	}
	batched, err := best("dataless", 0, false, nil, byReqs)
	if err != nil {
		return PayloadReport{}, err
	}
	var verified int64
	payload, err := best("payload", 0, true, &verified, func(a, b Result) bool { return a.MBPerSec > b.MBPerSec })
	if err != nil {
		return PayloadReport{}, err
	}
	overhead := 1 - batched.RequestsPerSec/baseline.RequestsPerSec
	return PayloadReport{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Trials:          payloadTrials,
		Baseline:        baseline,
		Batched:         batched,
		Payload:         payload,
		VerifiedStreams: verified / payloadTrials,
		OverheadFrac:    overhead,
		Budget:          budget,
		WithinBudget:    overhead <= budget,
	}, nil
}

// WriteJSON writes the payload report to path, indented.
func (r PayloadReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Summary renders the payload report as a short human-readable table.
func (r PayloadReport) Summary() string {
	out := fmt.Sprintf("bytes-on-the-wire bench (GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	out += fmt.Sprintf("%-16s %12s %10s %10s %10s\n", "config", "req/s", "MB/s", "allocs/op", "p99(µs)")
	for _, res := range []Result{r.Baseline, r.Batched, r.Payload} {
		out += fmt.Sprintf("%-16s %12.0f %10.1f %10.2f %10.1f\n",
			res.Name, res.RequestsPerSec, res.MBPerSec, res.AllocsPerOp, res.P99Micros)
	}
	out += fmt.Sprintf("verified streams (payload leg): %d\n", r.VerifiedStreams)
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	out += fmt.Sprintf("data-less overhead: %.2f%% (%s budget %.1f%%)\n", r.OverheadFrac*100, verdict, r.Budget*100)
	return out
}
