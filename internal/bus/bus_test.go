package bus

import (
	"testing"
	"time"

	"seqstream/internal/sim"
)

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(nil, 1e6); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := New(eng, -5); err == nil {
		t.Error("negative rate accepted")
	}
	if b, err := New(eng, 1e6); err != nil || b == nil {
		t.Errorf("valid bus rejected: %v", err)
	}
}

func TestTransferTiming(t *testing.T) {
	eng := sim.NewEngine()
	b, err := New(eng, 100e6) // 100 MB/s
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	b.Transfer(100e6, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != time.Second {
		t.Errorf("100MB at 100MB/s finished at %v, want 1s", doneAt)
	}
}

func TestTransferFIFOQueueing(t *testing.T) {
	eng := sim.NewEngine()
	b, err := New(eng, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	var first, second sim.Time
	b.Transfer(50e6, func() { first = eng.Now() })
	b.Transfer(50e6, func() { second = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if first != 500*time.Millisecond {
		t.Errorf("first done at %v", first)
	}
	if second != time.Second {
		t.Errorf("second done at %v, want queued behind first", second)
	}
}

func TestTransferZeroBytes(t *testing.T) {
	eng := sim.NewEngine()
	b, err := New(eng, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	b.Transfer(0, func() { called = true })
	b.Transfer(-10, nil) // nil done must not panic
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("zero-byte transfer never completed")
	}
	if b.Bytes() != 0 {
		t.Errorf("Bytes = %d, want 0", b.Bytes())
	}
	if b.Transfers() != 2 {
		t.Errorf("Transfers = %d, want 2", b.Transfers())
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine()
	b, err := New(eng, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Utilization() != 0 {
		t.Error("idle bus should have 0 utilization")
	}
	b.Transfer(50e6, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Bus was busy the whole run.
	if u := b.Utilization(); u < 0.99 || u > 1 {
		t.Errorf("Utilization = %v, want ~1", u)
	}
	// Let the clock idle past the backlog; utilization must fall.
	if err := eng.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if u := b.Utilization(); u < 0.45 || u > 0.55 {
		t.Errorf("Utilization after idle = %v, want ~0.5", u)
	}
}

func TestBusyUntil(t *testing.T) {
	eng := sim.NewEngine()
	b, err := New(eng, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	b.Transfer(100e6, nil)
	if b.BusyUntil() != time.Second {
		t.Errorf("BusyUntil = %v, want 1s", b.BusyUntil())
	}
	if b.Rate() != 100e6 {
		t.Errorf("Rate = %v", b.Rate())
	}
}
