// Package bus models a shared, byte-metered transfer link (PCI-X
// segment or SATA link) for the discrete-event simulator. Transfers are
// serialized FIFO at a fixed bandwidth, which makes the link a
// contention point when many devices share it.
package bus

import (
	"errors"
	"time"

	"seqstream/internal/sim"
)

// Bus is a shared link bound to an engine. All access must happen on
// the engine's event loop.
type Bus struct {
	eng       *sim.Engine
	rate      float64 // bytes per second
	busyUntil sim.Time

	bytes     int64
	transfers int64
}

// New creates a bus with the given bandwidth in bytes/second.
func New(eng *sim.Engine, rate float64) (*Bus, error) {
	if eng == nil {
		return nil, errors.New("bus: nil engine")
	}
	if rate <= 0 {
		return nil, errors.New("bus: rate must be positive")
	}
	return &Bus{eng: eng, rate: rate}, nil
}

// Rate returns the bandwidth in bytes/second.
func (b *Bus) Rate() float64 { return b.rate }

// Bytes returns total bytes moved.
func (b *Bus) Bytes() int64 { return b.bytes }

// Transfers returns the number of completed or scheduled transfers.
func (b *Bus) Transfers() int64 { return b.transfers }

// Utilization returns the fraction of time the bus has been busy since
// the start of the simulation.
func (b *Bus) Utilization() float64 {
	now := b.eng.Now()
	if now == 0 {
		return 0
	}
	busy := time.Duration(float64(b.bytes) / b.rate * float64(time.Second))
	u := float64(busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// Transfer schedules moving n bytes across the link and invokes done
// when the transfer completes. Transfers queue FIFO behind any transfer
// already scheduled. Zero or negative sizes complete after the queue
// drains with no added latency.
func (b *Bus) Transfer(n int64, done func()) {
	start := b.eng.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	var dur time.Duration
	if n > 0 {
		dur = time.Duration(float64(n) / b.rate * float64(time.Second))
		b.bytes += n
	}
	b.transfers++
	b.busyUntil = start + dur
	end := b.busyUntil
	b.eng.ScheduleAt(end, func() {
		if done != nil {
			done()
		}
	})
}

// BusyUntil returns the instant the current backlog drains.
func (b *Bus) BusyUntil() sim.Time { return b.busyUntil }
