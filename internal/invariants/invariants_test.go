package invariants

import "testing"

// TestCheck adapts to the build tag: with `invariants` a false
// condition panics with the formatted message; without it Check is a
// no-op. Both modes are exercised in CI (plain and -tags invariants).
func TestCheck(t *testing.T) {
	Check(true, "never fires")

	defer func() {
		r := recover()
		if Enabled && r == nil {
			t.Fatal("Check(false) did not panic with invariants enabled")
		}
		if !Enabled && r != nil {
			t.Fatalf("Check(false) panicked with invariants disabled: %v", r)
		}
		if Enabled {
			msg, ok := r.(string)
			if !ok || msg != "invariant violated: staged 3 > M=2" {
				t.Fatalf("panic message = %v", r)
			}
		}
	}()
	Check(false, "staged %d > M=%d", 3, 2)
}
