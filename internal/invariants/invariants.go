//go:build invariants

// Package invariants provides assertion helpers compiled in under the
// `invariants` build tag and compiled away without it. The scheduler
// and controller assert their state invariants (the §4.2 dispatch
// bound, the §4.3 memory bound M ≥ D·R·N, accounting consistency) on
// their hot paths; a violated invariant panics immediately instead of
// surfacing later as a wrong figure.
//
// Call sites guard non-trivial checks with Enabled so a release build
// pays nothing:
//
//	if invariants.Enabled {
//		invariants.Check(s.memUsed <= s.cfg.Memory, "staged %d > M=%d", s.memUsed, s.cfg.Memory)
//	}
//
// CI runs `go test -tags invariants ./internal/experiments/...` so the
// full experiment registry executes with every check live.
package invariants

import "fmt"

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// Check panics with the formatted message when cond is false.
func Check(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
