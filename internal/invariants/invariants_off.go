//go:build !invariants

package invariants

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Check is a no-op without the invariants build tag. Guard calls with
// Enabled so argument evaluation is eliminated too.
func Check(cond bool, format string, args ...any) {}
