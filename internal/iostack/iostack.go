// Package iostack assembles the simulated storage-node I/O hierarchy:
// one host with a CPU cost model, one or more controllers, and the
// drives behind them. It provides the three configurations the paper's
// §3 analysis uses (base 1×1, medium 2×4, large 16×4) plus the §5
// testbed (one controller, eight drives).
//
// The host CPU model charges per-request and per-byte costs on a
// serialized virtual CPU, which reproduces the §5.3 observation that a
// host dispatching very many large buffers is limited by buffer
// management rather than disk mechanics (Fig. 12 vs Fig. 13).
package iostack

import (
	"errors"
	"fmt"
	"time"

	"seqstream/internal/controller"
	"seqstream/internal/disk"
	"seqstream/internal/sim"
)

// CPUModel describes host-side software costs.
type CPUModel struct {
	// PerRequest is the fixed kernel/driver path cost per I/O.
	PerRequest time.Duration
	// CopyRate is the effective buffer-management bandwidth of the
	// host in bytes/second: each n-byte I/O charges n/CopyRate of CPU
	// time (copy, mapping, cache pollution). Zero disables the charge.
	CopyRate float64
	// PerLiveBuffer is the added management cost per request per live
	// I/O buffer (allocation tables, lookups). This is what penalizes
	// very large dispatch sets.
	PerLiveBuffer time.Duration
}

// DefaultCPU models the paper's dual Opteron 242 storage node: ~20 µs
// per I/O, ~2.4 GB/s effective buffer-management bandwidth, and ~0.4 µs
// of bookkeeping per live buffer per request.
func DefaultCPU() CPUModel {
	return CPUModel{
		PerRequest:    20 * time.Microsecond,
		CopyRate:      2.4e9,
		PerLiveBuffer: 400 * time.Nanosecond,
	}
}

// Validate reports configuration errors.
func (m CPUModel) Validate() error {
	if m.PerRequest < 0 || m.CopyRate < 0 || m.PerLiveBuffer < 0 {
		return errors.New("iostack: CPU costs must be >= 0")
	}
	return nil
}

// ControllerSpec pairs a controller configuration with its drives.
type ControllerSpec struct {
	Controller controller.Config
	Disks      []disk.Config
}

// Config describes a whole storage node.
type Config struct {
	Controllers []ControllerSpec
	CPU         CPUModel
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Controllers) == 0 {
		return errors.New("iostack: need at least one controller")
	}
	for i, spec := range c.Controllers {
		if err := spec.Controller.Validate(); err != nil {
			return fmt.Errorf("iostack: controller %d: %w", i, err)
		}
		if len(spec.Disks) == 0 {
			return fmt.Errorf("iostack: controller %d has no disks", i)
		}
		for j, dc := range spec.Disks {
			if err := dc.Validate(); err != nil {
				return fmt.Errorf("iostack: controller %d disk %d: %w", i, j, err)
			}
		}
	}
	return c.CPU.Validate()
}

// Result describes a completed host read.
type Result struct {
	Start sim.Time
	End   sim.Time
	// ControllerHit and DiskHit propagate cache outcomes.
	ControllerHit bool
	DiskHit       bool
}

// Stats accumulates host counters.
type Stats struct {
	Requests int64
	Bytes    int64
	CPUTime  sim.Time
}

// Host is a storage node bound to an engine. All access must happen on
// the engine loop.
type Host struct {
	eng   *sim.Engine
	cfg   Config
	ctrls []*controller.Controller
	// diskMap maps a global disk id to (controller, local disk).
	diskMap []diskRef

	cpuBusyUntil sim.Time
	liveBuffers  int
	stats        Stats
}

type diskRef struct {
	ctrl  int
	local int
}

// New builds the node described by cfg.
func New(eng *sim.Engine, cfg Config) (*Host, error) {
	if eng == nil {
		return nil, errors.New("iostack: nil engine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Host{eng: eng, cfg: cfg}
	for ci, spec := range cfg.Controllers {
		disks := make([]*disk.Disk, len(spec.Disks))
		for di, dc := range spec.Disks {
			d, err := disk.New(eng, dc)
			if err != nil {
				return nil, fmt.Errorf("iostack: controller %d disk %d: %w", ci, di, err)
			}
			disks[di] = d
			h.diskMap = append(h.diskMap, diskRef{ctrl: ci, local: di})
		}
		ctrl, err := controller.New(eng, spec.Controller, disks)
		if err != nil {
			return nil, fmt.Errorf("iostack: controller %d: %w", ci, err)
		}
		h.ctrls = append(h.ctrls, ctrl)
	}
	return h, nil
}

// Engine returns the engine the host is bound to.
func (h *Host) Engine() *sim.Engine { return h.eng }

// NumDisks returns the number of drives across all controllers.
func (h *Host) NumDisks() int { return len(h.diskMap) }

// Controllers returns the number of controllers.
func (h *Host) Controllers() int { return len(h.ctrls) }

// Controller returns the i-th controller.
func (h *Host) Controller(i int) *controller.Controller { return h.ctrls[i] }

// Disk returns the drive behind a global disk id.
func (h *Host) Disk(global int) *disk.Disk {
	ref := h.diskMap[global]
	return h.ctrls[ref.ctrl].Disk(ref.local)
}

// DiskCapacity returns the capacity of a global disk id.
func (h *Host) DiskCapacity(global int) int64 {
	return h.Disk(global).Capacity()
}

// Stats returns a copy of host counters.
func (h *Host) Stats() Stats { return h.stats }

// SetLiveBuffers tells the CPU model how many host I/O buffers are
// currently allocated (the dispatch + buffered sets). The core
// scheduler updates this as buffers come and go.
func (h *Host) SetLiveBuffers(n int) {
	if n < 0 {
		n = 0
	}
	h.liveBuffers = n
}

// LiveBuffers returns the current live-buffer count.
func (h *Host) LiveBuffers() int { return h.liveBuffers }

// CPUWork serializes d of CPU time on the host CPU and runs done when
// it finishes.
func (h *Host) CPUWork(d time.Duration, done func()) {
	if d < 0 {
		d = 0
	}
	start := h.eng.Now()
	if h.cpuBusyUntil > start {
		start = h.cpuBusyUntil
	}
	h.cpuBusyUntil = start + d
	h.stats.CPUTime += d
	h.eng.ScheduleAt(h.cpuBusyUntil, func() {
		if done != nil {
			done()
		}
	})
}

// ChargeRequest serializes the host-side cost of delivering an n-byte
// request from host memory (buffer lookup, copy, bookkeeping) and runs
// done when the work retires. Device reads charge the same cost on
// their completion path automatically; this entry point exists for
// requests served from host memory without a device read.
func (h *Host) ChargeRequest(n int64, done func()) {
	h.CPUWork(h.requestCPUCost(n), done)
}

// requestCPUCost returns the host CPU time charged for an n-byte I/O at
// the current live-buffer level.
func (h *Host) requestCPUCost(n int64) time.Duration {
	m := h.cfg.CPU
	cost := m.PerRequest + time.Duration(h.liveBuffers)*m.PerLiveBuffer
	if m.CopyRate > 0 && n > 0 {
		cost += time.Duration(float64(n) / m.CopyRate * float64(time.Second))
	}
	return cost
}

// ReadAt issues an asynchronous read of [off, off+n) against a global
// disk id. done fires on the engine loop after controller delivery and
// host CPU processing.
func (h *Host) ReadAt(global int, off, n int64, done func(Result)) error {
	return h.submit(global, off, n, false, done)
}

// WriteAt issues an asynchronous write of [off, off+n) against a
// global disk id, with the same host CPU accounting as reads.
func (h *Host) WriteAt(global int, off, n int64, done func(Result)) error {
	return h.submit(global, off, n, true, done)
}

func (h *Host) submit(global int, off, n int64, write bool, done func(Result)) error {
	if global < 0 || global >= len(h.diskMap) {
		return fmt.Errorf("iostack: disk %d out of range [0,%d)", global, len(h.diskMap))
	}
	ref := h.diskMap[global]
	start := h.eng.Now()
	complete := func(cres controller.Result) {
		// Host-side completion: buffer management on the virtual CPU.
		h.CPUWork(h.requestCPUCost(n), func() {
			h.stats.Requests++
			h.stats.Bytes += n
			if done != nil {
				done(Result{
					Start:         start,
					End:           h.eng.Now(),
					ControllerHit: cres.ControllerHit,
					DiskHit:       cres.DiskHit,
				})
			}
		})
	}
	var err error
	if write {
		err = h.ctrls[ref.ctrl].SubmitWrite(ref.local, off, n, complete)
	} else {
		err = h.ctrls[ref.ctrl].Submit(ref.local, off, n, complete)
	}
	if err != nil {
		return fmt.Errorf("iostack: %w", err)
	}
	return nil
}
