package iostack

import (
	"seqstream/internal/controller"
	"seqstream/internal/disk"
)

// Options tweak the standard configurations.
type Options struct {
	// DiskConfig overrides the per-drive configuration. When nil, the
	// WD800JD profile is used with per-disk seeds.
	DiskConfig func(seed uint64) disk.Config
	// ControllerConfig overrides the controller configuration. When
	// nil, the BC4810 profile is used.
	ControllerConfig func() controller.Config
	// CPU overrides the host CPU model. Zero value uses DefaultCPU.
	CPU *CPUModel
}

func (o Options) diskConfig(seed uint64) disk.Config {
	if o.DiskConfig != nil {
		return o.DiskConfig(seed)
	}
	return disk.ProfileWD800JD(seed)
}

func (o Options) controllerConfig() controller.Config {
	if o.ControllerConfig != nil {
		return o.ControllerConfig()
	}
	return controller.ProfileBC4810()
}

func (o Options) cpu() CPUModel {
	if o.CPU != nil {
		return *o.CPU
	}
	return DefaultCPU()
}

// build assembles a configuration of nctrl controllers with
// disksPerCtrl drives each.
func build(nctrl, disksPerCtrl int, opts Options) Config {
	cfg := Config{CPU: opts.cpu()}
	seed := uint64(1)
	for c := 0; c < nctrl; c++ {
		spec := ControllerSpec{Controller: opts.controllerConfig()}
		for d := 0; d < disksPerCtrl; d++ {
			spec.Disks = append(spec.Disks, opts.diskConfig(seed))
			seed++
		}
		cfg.Controllers = append(cfg.Controllers, spec)
	}
	return cfg
}

// BaseConfig is the paper's base simulation configuration: a single
// controller with a single drive (§3).
func BaseConfig(opts Options) Config { return build(1, 1, opts) }

// MediumConfig is the medium-size configuration: two controllers and
// eight drives total (§3, §5).
func MediumConfig(opts Options) Config { return build(2, 4, opts) }

// LargeConfig is the large configuration: sixteen controllers hosting
// four drives each (§3); the Fig. 1 sweep uses 60 of the 64 drives.
func LargeConfig(opts Options) Config { return build(16, 4, opts) }

// Testbed8Config matches the §5.3 experiments where a single
// controller hosts all eight drives.
func Testbed8Config(opts Options) Config { return build(1, 8, opts) }
