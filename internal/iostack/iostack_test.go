package iostack

import (
	"testing"
	"time"

	"seqstream/internal/controller"
	"seqstream/internal/disk"
	"seqstream/internal/sim"
)

func newHost(t *testing.T, cfg Config) (*sim.Engine, *Host) {
	t.Helper()
	eng := sim.NewEngine()
	h, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, h
}

func TestConfigShapes(t *testing.T) {
	tests := []struct {
		name  string
		cfg   Config
		disks int
		ctrls int
	}{
		{"base", BaseConfig(Options{}), 1, 1},
		{"medium", MediumConfig(Options{}), 8, 2},
		{"large", LargeConfig(Options{}), 64, 16},
		{"testbed8", Testbed8Config(Options{}), 8, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			_, h := newHost(t, tt.cfg)
			if h.NumDisks() != tt.disks {
				t.Errorf("NumDisks = %d, want %d", h.NumDisks(), tt.disks)
			}
			if h.Controllers() != tt.ctrls {
				t.Errorf("Controllers = %d, want %d", h.Controllers(), tt.ctrls)
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config accepted")
	}
	cfg := BaseConfig(Options{})
	cfg.Controllers[0].Disks = nil
	if err := cfg.Validate(); err == nil {
		t.Error("controller without disks accepted")
	}
	cfg = BaseConfig(Options{})
	cfg.Controllers[0].Disks[0].InterfaceRate = -1
	if err := cfg.Validate(); err == nil {
		t.Error("invalid disk accepted")
	}
	cfg = BaseConfig(Options{})
	cfg.Controllers[0].Controller.HostRate = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid controller accepted")
	}
	cfg = BaseConfig(Options{})
	cfg.CPU.CopyRate = -1
	if err := cfg.Validate(); err == nil {
		t.Error("invalid CPU model accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, BaseConfig(Options{})); err == nil {
		t.Error("nil engine accepted")
	}
	eng := sim.NewEngine()
	if _, err := New(eng, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestOptionsOverrides(t *testing.T) {
	custom := Options{
		DiskConfig: func(seed uint64) disk.Config {
			c := disk.ProfileWD800JD(seed)
			c.CacheSize = 4 << 20
			return c
		},
		ControllerConfig: func() controller.Config {
			c := controller.ProfileBC4810()
			c.HostRate = 200e6
			return c
		},
		CPU: &CPUModel{PerRequest: time.Millisecond},
	}
	cfg := BaseConfig(custom)
	if cfg.Controllers[0].Disks[0].CacheSize != 4<<20 {
		t.Error("disk override ignored")
	}
	if cfg.Controllers[0].Controller.HostRate != 200e6 {
		t.Error("controller override ignored")
	}
	if cfg.CPU.PerRequest != time.Millisecond {
		t.Error("CPU override ignored")
	}
}

func TestReadAtCompletes(t *testing.T) {
	eng, h := newHost(t, BaseConfig(Options{}))
	var res *Result
	if err := h.ReadAt(0, 0, 64<<10, func(r Result) { res = &r }); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no completion")
	}
	if res.End <= res.Start {
		t.Error("nonpositive latency")
	}
	st := h.Stats()
	if st.Requests != 1 || st.Bytes != 64<<10 {
		t.Errorf("stats = %+v", st)
	}
	if st.CPUTime <= 0 {
		t.Error("no CPU time charged")
	}
}

func TestReadAtBadDisk(t *testing.T) {
	_, h := newHost(t, BaseConfig(Options{}))
	if err := h.ReadAt(-1, 0, 4096, nil); err == nil {
		t.Error("negative disk accepted")
	}
	if err := h.ReadAt(1, 0, 4096, nil); err == nil {
		t.Error("out-of-range disk accepted")
	}
	if err := h.ReadAt(0, -4, 4096, nil); err == nil {
		t.Error("bad offset accepted")
	}
}

func TestGlobalDiskMapping(t *testing.T) {
	eng, h := newHost(t, MediumConfig(Options{}))
	// Reads on every global disk id must complete on distinct drives.
	done := make([]bool, h.NumDisks())
	for i := 0; i < h.NumDisks(); i++ {
		i := i
		if err := h.ReadAt(i, 0, 4096, func(Result) { done[i] = true }); err != nil {
			t.Fatalf("ReadAt(%d): %v", i, err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ok := range done {
		if !ok {
			t.Errorf("disk %d never completed", i)
		}
	}
	if h.DiskCapacity(0) != h.Disk(0).Capacity() {
		t.Error("capacity accessor mismatch")
	}
	// Drives on different controllers are distinct objects.
	if h.Disk(0) == h.Disk(4) {
		t.Error("controller 0 and 1 share a drive")
	}
}

func TestCPUSerialization(t *testing.T) {
	eng, h := newHost(t, BaseConfig(Options{}))
	var ends []sim.Time
	h.CPUWork(10*time.Millisecond, func() { ends = append(ends, eng.Now()) })
	h.CPUWork(10*time.Millisecond, func() { ends = append(ends, eng.Now()) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != 10*time.Millisecond || ends[1] != 20*time.Millisecond {
		t.Errorf("CPU work ends = %v, want serialized 10ms/20ms", ends)
	}
	h.CPUWork(-5, func() {}) // negative clamps, no panic
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveBuffersRaiseCPUCost(t *testing.T) {
	_, h := newHost(t, BaseConfig(Options{}))
	h.SetLiveBuffers(0)
	base := h.requestCPUCost(64 << 10)
	h.SetLiveBuffers(1000)
	loaded := h.requestCPUCost(64 << 10)
	if loaded <= base {
		t.Errorf("cost with 1000 buffers (%v) should exceed base (%v)", loaded, base)
	}
	h.SetLiveBuffers(-5)
	if h.LiveBuffers() != 0 {
		t.Error("negative live buffers not clamped")
	}
}

func TestParallelDisksScale(t *testing.T) {
	// Eight drives on two controllers should deliver far more aggregate
	// throughput than one drive.
	run := func(cfg Config, disks int) float64 {
		eng, h := newHost(t, cfg)
		const per = 32
		const req = 1 << 20
		var bytes int64
		for d := 0; d < disks; d++ {
			d := d
			var issue func(i int64)
			issue = func(i int64) {
				if i >= per {
					return
				}
				if err := h.ReadAt(d, i*req, req, func(Result) {
					bytes += req
					issue(i + 1)
				}); err != nil {
					t.Fatal(err)
				}
			}
			issue(0)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(bytes) / eng.Now().Seconds() / 1e6
	}
	one := run(BaseConfig(Options{}), 1)
	eight := run(MediumConfig(Options{}), 8)
	if eight < 4*one {
		t.Errorf("8-disk throughput %.1f MB/s should be >= 4x single disk %.1f MB/s", eight, one)
	}
}
