// Package controller models a multi-channel disk controller: a request
// queue, an on-board cache, optional controller-level read-ahead
// (prefetching), fan-out to several drives, and a shared host link.
//
// Controller-level prefetching is the §3 mechanism behind Figure 8: on
// a cache miss the controller fetches ReadAhead bytes from the drive
// into a cache extent; subsequent requests in that extent are served
// from controller memory. When streams × ReadAhead exceeds the cache,
// extents are reclaimed before they are consumed and throughput
// collapses.
//
// Unlike the sharded host-level scheduler in internal/core, this
// package is single-threaded by design: it lives entirely on the
// discrete-event simulator's event loop, needs no locks, and must stay
// deterministic (the simdet analyzer gates it). Do not add goroutines
// or wall-clock reads here.
package controller
