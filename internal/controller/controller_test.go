package controller

import (
	"testing"
	"time"

	"seqstream/internal/disk"
	"seqstream/internal/sim"
)

func newSetup(t *testing.T, ndisks int, mutate func(*Config)) (*sim.Engine, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	disks := make([]*disk.Disk, ndisks)
	for i := range disks {
		d, err := disk.New(eng, disk.ProfileWD800JD(uint64(i)+1))
		if err != nil {
			t.Fatalf("disk.New: %v", err)
		}
		disks[i] = d
	}
	cfg := ProfileBC4810()
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(eng, cfg, disks)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, c
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", nil, true},
		{"readahead", func(c *Config) { c.ReadAhead = 1 << 20 }, true},
		{"negative cache", func(c *Config) { c.CacheSize = -1 }, false},
		{"negative readahead", func(c *Config) { c.ReadAhead = -1 }, false},
		{"readahead over cache", func(c *Config) { c.ReadAhead = c.CacheSize + 1 }, false},
		{"zero rate", func(c *Config) { c.HostRate = 0 }, false},
		{"negative overhead", func(c *Config) { c.Overhead = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := ProfileBC4810()
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	d, err := disk.New(eng, disk.ProfileWD800JD(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, ProfileBC4810(), []*disk.Disk{d}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, ProfileBC4810(), nil); err == nil {
		t.Error("no disks accepted")
	}
	bad := ProfileBC4810()
	bad.HostRate = -1
	if _, err := New(eng, bad, []*disk.Disk{d}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSubmitBadDisk(t *testing.T) {
	_, c := newSetup(t, 2, nil)
	if err := c.Submit(-1, 0, 4096, nil); err == nil {
		t.Error("negative disk id accepted")
	}
	if err := c.Submit(2, 0, 4096, nil); err == nil {
		t.Error("out-of-range disk id accepted")
	}
}

func TestSubmitOutOfRangePropagates(t *testing.T) {
	_, c := newSetup(t, 1, nil)
	cap := c.Disk(0).Capacity()
	if err := c.Submit(0, cap, 4096, nil); err == nil {
		t.Error("out-of-range offset accepted")
	}
	st := c.Stats()
	if st.Requests != 0 || st.Misses != 0 || st.BytesDisks != 0 {
		t.Errorf("failed submit leaked stats: %+v", st)
	}
}

func TestPassThroughRead(t *testing.T) {
	eng, c := newSetup(t, 1, nil)
	var res *Result
	if err := c.Submit(0, 0, 64<<10, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no completion")
	}
	if res.ControllerHit {
		t.Error("pass-through read reported controller hit")
	}
	if res.End <= res.Start {
		t.Error("nonpositive latency")
	}
	if c.Stats().BytesHost != 64<<10 {
		t.Errorf("BytesHost = %d", c.Stats().BytesHost)
	}
}

func TestControllerReadAheadHits(t *testing.T) {
	eng, c := newSetup(t, 1, func(cfg *Config) { cfg.ReadAhead = 1 << 20 })
	var hits int
	for i := int64(0); i < 16; i++ {
		if err := c.Submit(0, i*64<<10, 64<<10, func(r Result) {
			if r.ControllerHit {
				hits++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 MB read-ahead covers 16 64K requests: 1 miss, 15 hits.
	if hits != 15 {
		t.Errorf("controller hits = %d, want 15", hits)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.BytesDisks != 1<<20 {
		t.Errorf("BytesDisks = %d, want 1MB", st.BytesDisks)
	}
}

func TestControllerCacheThrash(t *testing.T) {
	// Fig 8 pathology: streams × read-ahead exceeding the cache turns
	// every request into a miss with a huge disk fetch.
	run := func(cache int64) (hits, misses int64) {
		eng, c := newSetup(t, 1, func(cfg *Config) {
			cfg.CacheSize = cache
			cfg.ReadAhead = 1 << 20
		})
		const streams = 8
		capacity := c.Disk(0).Capacity()
		spacing := capacity / streams
		spacing -= spacing % 512
		// Synchronous clients with think time: each stream issues its
		// next sequential 64K request 100ms after the previous
		// completes, so extents live far shorter than a stream needs them. With only
		// 2 extents the other streams' fills evict an extent long
		// before its stream has consumed it.
		var issue func(s, round int64)
		issue = func(s, round int64) {
			if round >= 8 {
				return
			}
			off := s*spacing + round*64<<10
			if err := c.Submit(0, off, 64<<10, func(Result) {
				eng.Schedule(100*time.Millisecond, func() { issue(s, round+1) })
			}); err != nil {
				t.Fatal(err)
			}
		}
		for s := int64(0); s < streams; s++ {
			issue(s, 0)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		return st.CacheHits + st.Coalesced, st.Misses
	}
	bigHits, bigMiss := run(16 << 20)    // 16 extents >= 8 streams
	smallHits, smallMiss := run(2 << 20) // 2 extents < 8 streams
	if bigHits <= smallHits {
		t.Errorf("big cache hits %d should exceed small cache hits %d", bigHits, smallHits)
	}
	if smallMiss <= 2*bigMiss {
		t.Errorf("small cache misses = %d vs big cache %d, want heavy thrashing", smallMiss, bigMiss)
	}
}

func TestHostLinkSerializes(t *testing.T) {
	// Two disks complete around the same time; host transfers must
	// serialize on the shared link.
	eng, c := newSetup(t, 2, func(cfg *Config) { cfg.HostRate = 100e6 })
	var ends []sim.Time
	const n = 32 << 20 // 32 MB each => 320ms each on the link
	for d := 0; d < 2; d++ {
		if err := c.Submit(d, 0, n, func(r Result) { ends = append(ends, r.End) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 {
		t.Fatalf("completions = %d", len(ends))
	}
	gap := ends[1] - ends[0]
	if gap < 0 {
		gap = -gap
	}
	if gap < 250*time.Millisecond {
		t.Errorf("completions %v apart, want serialized by link (>250ms)", gap)
	}
}

func TestInvalidateCache(t *testing.T) {
	eng, c := newSetup(t, 1, func(cfg *Config) { cfg.ReadAhead = 1 << 20 })
	if err := c.Submit(0, 0, 64<<10, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	c.InvalidateCache()
	if err := c.Submit(0, 64<<10, 64<<10, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().CacheHits != 0 {
		t.Error("hit after InvalidateCache")
	}
}

func TestAccessors(t *testing.T) {
	_, c := newSetup(t, 3, nil)
	if c.Disks() != 3 {
		t.Errorf("Disks = %d", c.Disks())
	}
	if c.Disk(1) == nil {
		t.Error("nil disk accessor")
	}
	if c.Link() == nil {
		t.Error("nil link")
	}
	if c.Config().HostRate != 450e6 {
		t.Error("config passthrough broken")
	}
}
