package controller

import (
	"testing"

	"seqstream/internal/obs"
)

// TestObsMirrorsStats drives a read-ahead workload and checks every
// metric family against the controller's own counters.
func TestObsMirrorsStats(t *testing.T) {
	eng, c := newSetup(t, 1, func(cfg *Config) { cfg.ReadAhead = 1 << 20 })
	reg := obs.NewRegistry()
	c.SetObs(NewObs(reg))

	const req = 64 << 10
	done := 0
	for i := int64(0); i < 32; i++ {
		if err := c.Submit(0, i*req, req, func(Result) { done++ }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 32 {
		t.Fatalf("completed %d of 32", done)
	}

	st := c.Stats()
	if st.CacheHits == 0 && st.Coalesced == 0 {
		t.Fatal("read-ahead produced no hits; workload untested")
	}
	vars := reg.Vars()
	for name, want := range map[string]int64{
		"seqstream_controller_requests_total":   st.Requests,
		"seqstream_controller_cache_hits_total": st.CacheHits,
		"seqstream_controller_coalesced_total":  st.Coalesced,
		"seqstream_controller_misses_total":     st.Misses,
		"seqstream_controller_host_bytes_total": st.BytesHost,
		"seqstream_controller_disk_bytes_total": st.BytesDisks,
	} {
		if got := vars[name]; got != want {
			t.Errorf("%s = %v, want %d (Stats)", name, got, want)
		}
	}
	// The engine has drained: nothing queued, nothing in flight.
	if got := vars["seqstream_controller_queue_depth"]; got != int64(0) {
		t.Errorf("queue_depth = %v after drain", got)
	}
	if got := vars["seqstream_controller_inflight_fetches"]; got != int64(0) {
		t.Errorf("inflight_fetches = %v after drain", got)
	}
}

// TestObsWriteAndRejectPaths checks writes are mirrored and rejected
// requests leave the monotone request counter consistent with Stats.
func TestObsWriteAndRejectPaths(t *testing.T) {
	eng, c := newSetup(t, 1, nil)
	reg := obs.NewRegistry()
	c.SetObs(NewObs(reg))

	if err := c.Submit(0, c.Disk(0).Capacity(), 4096, nil); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := c.SubmitWrite(0, 0, 4096, nil); err != nil {
		t.Fatalf("SubmitWrite: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	vars := reg.Vars()
	if got := vars["seqstream_controller_requests_total"]; got != st.Requests {
		t.Errorf("requests_total = %v, want %d", got, st.Requests)
	}
	if got := vars["seqstream_controller_writes_total"]; got != st.Writes {
		t.Errorf("writes_total = %v, want %d", got, st.Writes)
	}
}
