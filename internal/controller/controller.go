package controller

import (
	"errors"
	"fmt"
	"time"

	"seqstream/internal/bus"
	"seqstream/internal/disk"
	"seqstream/internal/flight"
	"seqstream/internal/invariants"
	"seqstream/internal/sim"
)

// Config describes a controller.
type Config struct {
	// CacheSize is the controller cache in bytes. Zero disables
	// caching and read-ahead (pure pass-through).
	CacheSize int64
	// ReadAhead is the number of bytes fetched from a drive per cache
	// miss, counted from the missed offset. Zero disables prefetch
	// (misses fetch exactly the request).
	ReadAhead int64
	// HostRate is the controller-to-host link bandwidth in bytes/s.
	HostRate float64
	// DiskQueueDepth bounds outstanding requests per drive; further
	// fetches wait in the controller. Defaults to 2 when zero.
	// Prefetch extents are reserved when a fetch is dispatched to the
	// drive, so the depth also bounds how many reservations a drive
	// pins at once.
	DiskQueueDepth int
	// Overhead is the fixed per-request controller processing time.
	Overhead time.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CacheSize < 0:
		return errors.New("controller: cache size must be >= 0")
	case c.ReadAhead < 0:
		return errors.New("controller: read-ahead must be >= 0")
	case c.ReadAhead > 0 && c.CacheSize > 0 && c.ReadAhead > c.CacheSize:
		return errors.New("controller: read-ahead exceeds cache size")
	case c.HostRate <= 0:
		return errors.New("controller: host rate must be positive")
	case c.Overhead < 0:
		return errors.New("controller: overhead must be >= 0")
	}
	return nil
}

// ProfileBC4810 models the paper's Broadcom BC4810: an 8-channel entry
// level SATA RAID controller sustaining up to 450 MB/s (§5), with a
// mid-range 64 MB cache (§2.1) and read-ahead disabled by default.
func ProfileBC4810() Config {
	return Config{
		CacheSize: 64 << 20,
		ReadAhead: 0,
		HostRate:  450e6,
		Overhead:  50 * time.Microsecond,
	}
}

// Result describes a completed controller request.
type Result struct {
	Start sim.Time
	End   sim.Time
	// ControllerHit reports the request was served from controller
	// cache without touching the drive.
	ControllerHit bool
	// DiskHit reports the drive served its part from its own cache.
	DiskHit bool
}

// Stats accumulates controller counters.
type Stats struct {
	Requests   int64
	Writes     int64 // write requests accepted
	CacheHits  int64 // served from a resident extent
	Coalesced  int64 // joined an in-flight fetch covering the range
	Misses     int64 // initiated a drive fetch
	BytesHost  int64 // bytes delivered over the host link
	BytesDisks int64 // bytes fetched from drives (incl. prefetch)
}

type extent struct {
	diskID int
	start  int64
	end    int64
	useSeq uint64
	// reserved marks an extent claimed by an in-flight fetch: its
	// range is not yet readable and it cannot be evicted. Reserving at
	// issue time is what collapses throughput when streams × read-ahead
	// exceed the cache (Fig. 8): in-flight prefetches pin the cache and
	// evict data other streams have not consumed yet.
	reserved bool
}

type waiter struct {
	length int64
	start  sim.Time
	done   func(Result)
}

type inflight struct {
	diskID  int
	start   int64
	end     int64
	waiters []waiter
}

// fetchJob is a drive fetch waiting for a queue slot.
type fetchJob struct {
	diskID int
	off    int64
	n      int64 // requested length
	fetch  int64 // planned fetch length (>= n when prefetching)
	start  sim.Time
	write  bool
	done   func(Result)
	fl     *inflight
	ext    *extent // reserved cache extent, nil when not prefetching
	token  uint64  // reservation generation
}

// Controller is a simulated controller. All access must happen on the
// engine loop.
type Controller struct {
	eng      *sim.Engine
	cfg      Config
	link     *bus.Bus
	disks    []*disk.Disk
	extents  []extent
	extSize  int64
	seq      uint64
	inflight []*inflight
	pending  [][]*fetchJob // per-disk FIFO of waiting fetches
	active   []int         // per-disk outstanding fetches
	stats    Stats
	obs      *Obs

	// fr records controller accept/complete events; diskBase maps this
	// controller's local drive indices to the node's global disk ids so
	// the events line up with the core scheduler's.
	fr       *flight.Recorder
	diskBase int
}

// SetFlight attaches a flight recorder (nil detaches). diskBase is
// added to local drive indices when stamping events, so a multi-
// controller host reports global disk ids. Call it before traffic.
func (c *Controller) SetFlight(rec *flight.Recorder, diskBase int) {
	c.fr = rec
	c.diskBase = diskBase
}

// New constructs a controller over the given drives. The host link is
// created internally from cfg.HostRate.
func New(eng *sim.Engine, cfg Config, disks []*disk.Disk) (*Controller, error) {
	if eng == nil {
		return nil, errors.New("controller: nil engine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(disks) == 0 {
		return nil, errors.New("controller: need at least one disk")
	}
	link, err := bus.New(eng, cfg.HostRate)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		eng:     eng,
		cfg:     cfg,
		link:    link,
		disks:   disks,
		pending: make([][]*fetchJob, len(disks)),
		active:  make([]int, len(disks)),
	}
	if cfg.CacheSize > 0 && cfg.ReadAhead > 0 {
		c.extSize = cfg.ReadAhead
		n := cfg.CacheSize / cfg.ReadAhead
		if n < 1 {
			n = 1
		}
		c.extents = make([]extent, n)
	}
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Disks returns the number of attached drives.
func (c *Controller) Disks() int { return len(c.disks) }

// Disk returns the i-th attached drive.
func (c *Controller) Disk(i int) *disk.Disk { return c.disks[i] }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Link returns the host link (for utilization inspection).
func (c *Controller) Link() *bus.Bus { return c.link }

// Submit issues a read of [off, off+n) on drive diskID. done fires on
// the engine loop after the data has crossed the host link.
func (c *Controller) Submit(diskID int, off, n int64, done func(Result)) error {
	if diskID < 0 || diskID >= len(c.disks) {
		return fmt.Errorf("controller: disk %d out of range [0,%d)", diskID, len(c.disks))
	}
	start := c.eng.Now()
	c.stats.Requests++
	if c.fr != nil {
		gdisk := uint16(c.diskBase + diskID)
		c.fr.RingFor(c.diskBase + diskID).Record(flight.Event{Op: flight.OpCtrlSubmit,
			Disk: gdisk, Stream: flight.NoStream, Offset: off, Length: n, T: time.Duration(start)})
		orig := done
		done = func(res Result) {
			c.fr.RingFor(int(gdisk)).Record(flight.Event{Op: flight.OpCtrlDone,
				Disk: gdisk, Stream: flight.NoStream, Offset: off, Length: n,
				T: time.Duration(res.End), Dur: time.Duration(res.End - res.Start)})
			if orig != nil {
				orig(res)
			}
		}
	}

	finish := func(res Result) {
		c.stats.BytesHost += n
		if c.obs != nil {
			c.obs.hostBytes.Add(n)
		}
		c.link.Transfer(n, func() {
			res.End = c.eng.Now()
			if done != nil {
				done(res)
			}
		})
	}

	if c.lookupExtent(diskID, off, n) {
		c.stats.CacheHits++
		if c.obs != nil {
			// The metric counter is monotone, so it is bumped only on
			// paths that accept the request (the range-check failure
			// below un-counts stats.Requests).
			c.obs.requests.Inc()
			c.obs.cacheHits.Inc()
		}
		c.eng.Schedule(c.cfg.Overhead, func() {
			finish(Result{Start: start, ControllerHit: true})
		})
		return nil
	}

	// A fetch already in flight for this range absorbs the request; it
	// completes from controller memory when the fetch lands.
	if fl := c.lookupInflight(diskID, off, n); fl != nil {
		c.stats.Coalesced++
		if c.obs != nil {
			c.obs.requests.Inc()
			c.obs.coalesced.Inc()
		}
		fl.waiters = append(fl.waiters, waiter{length: n, start: start, done: done})
		return nil
	}

	d := c.disks[diskID]
	if off < 0 || n <= 0 || off+n > d.Capacity() {
		c.stats.Requests--
		return fmt.Errorf("controller: %w: off=%d len=%d cap=%d", disk.ErrOutOfRange, off, n, d.Capacity())
	}
	c.stats.Misses++
	if c.obs != nil {
		c.obs.requests.Inc()
		c.obs.misses.Inc()
	}
	fetch := n
	if c.cfg.ReadAhead > fetch {
		fetch = c.cfg.ReadAhead
	}
	if rem := d.Capacity() - off; fetch > rem {
		fetch = rem
	}
	c.stats.BytesDisks += fetch
	if c.obs != nil {
		c.obs.diskBytes.Add(fetch)
	}
	job := &fetchJob{diskID: diskID, off: off, n: n, fetch: fetch, start: start, done: done}
	if fetch > n && len(c.extents) > 0 {
		// Blind prefetch: the extent is reserved when the request
		// enters the controller, so every stream blocked on a miss
		// pins cache memory. Eviction prefers resident data; when all
		// extents are reservations, new reservations steal the oldest
		// one, its fill lands nowhere, and throughput collapses — the
		// Fig. 8 regime where streams × read-ahead exceed the cache.
		job.ext, job.token = c.reserveExtent(diskID, off, off+fetch)
	}
	job.fl = &inflight{diskID: diskID, start: off, end: off + fetch}
	c.inflight = append(c.inflight, job.fl)
	c.pending[diskID] = append(c.pending[diskID], job)
	c.dispatchDisk(diskID)
	return nil
}

// dispatchDisk starts queued fetches while the drive's queue depth
// allows. Prefetch extents are reserved here — at dispatch, not at
// submission — so at most DiskQueueDepth reservations per drive are
// pinned at any instant.
func (c *Controller) dispatchDisk(diskID int) {
	depth := c.cfg.DiskQueueDepth
	if depth <= 0 {
		depth = 2
	}
	if invariants.Enabled {
		defer c.checkInvariants(diskID, depth)
	}
	// Every queue mutation funnels through here (submission, write
	// transfer, fetch completion), so syncing on exit keeps the gauges
	// current without instrumenting each site.
	defer c.syncQueueGauges()
	for c.active[diskID] < depth && len(c.pending[diskID]) > 0 {
		job := c.pending[diskID][0]
		c.pending[diskID] = c.pending[diskID][1:]
		c.active[diskID]++
		submit := c.disks[diskID].Submit
		if job.write {
			submit = c.disks[diskID].SubmitWrite
		}
		err := submit(job.off, job.fetch, func(dres disk.Result) {
			c.active[diskID]--
			c.removeInflight(job.fl)
			// Commit the fill only if the reservation survived; a
			// stolen extent means the prefetched bytes are dropped.
			if job.ext != nil && job.ext.reserved && job.ext.useSeq == job.token {
				job.ext.reserved = false
				c.seq++
				job.ext.useSeq = c.seq
			}
			c.finishJob(job, dres.CacheHit)
			c.dispatchDisk(diskID)
		})
		if err != nil {
			// Ranges are validated at Submit; treat a refusal as an
			// immediate degenerate completion to keep the queue live.
			c.active[diskID]--
			c.removeInflight(job.fl)
			if job.ext != nil && job.ext.reserved && job.ext.useSeq == job.token {
				*job.ext = extent{}
			}
			c.finishJob(job, false)
		}
	}
}

// checkInvariants asserts the per-drive queue invariants when the
// `invariants` build tag is on: the outstanding count respects the
// queue depth, queued fetches belong to the drive's FIFO, and every
// queued fetch's in-flight record is registered (so coalescing finds
// it). It runs on the engine loop.
func (c *Controller) checkInvariants(diskID, depth int) {
	invariants.Check(c.active[diskID] >= 0 && c.active[diskID] <= depth,
		"drive %d has %d outstanding fetches, queue depth is %d", diskID, c.active[diskID], depth)
	invariants.Check(c.active[diskID] == depth || len(c.pending[diskID]) == 0,
		"drive %d idles %d queue slots with %d fetches waiting",
		diskID, depth-c.active[diskID], len(c.pending[diskID]))
	for _, job := range c.pending[diskID] {
		invariants.Check(job.diskID == diskID,
			"fetch for drive %d queued on drive %d", job.diskID, diskID)
		registered := job.write // zero-width write records never coalesce
		for _, fl := range c.inflight {
			if fl == job.fl {
				registered = true
				break
			}
		}
		invariants.Check(registered, "queued fetch [%d,%d) on drive %d has no in-flight record",
			job.off, job.off+job.fetch, diskID)
	}
}

// finishJob delivers a completed fetch to its requester and any
// coalesced waiters over the host link. Write acknowledgements carry
// no data (the payload crossed the link before the drive write).
func (c *Controller) finishJob(job *fetchJob, diskHit bool) {
	if job.write {
		c.eng.Schedule(c.cfg.Overhead, func() {
			if job.done != nil {
				job.done(Result{Start: job.start, End: c.eng.Now()})
			}
		})
		return
	}
	c.stats.BytesHost += job.n
	if c.obs != nil {
		c.obs.hostBytes.Add(job.n)
	}
	c.link.Transfer(job.n, func() {
		if job.done != nil {
			job.done(Result{Start: job.start, End: c.eng.Now(), DiskHit: diskHit})
		}
	})
	for _, w := range job.fl.waiters {
		w := w
		c.stats.BytesHost += w.length
		if c.obs != nil {
			c.obs.hostBytes.Add(w.length)
		}
		c.link.Transfer(w.length, func() {
			if w.done != nil {
				w.done(Result{Start: w.start, End: c.eng.Now(), ControllerHit: true, DiskHit: diskHit})
			}
		})
	}
}

// SubmitWrite issues a write of [off, off+n) on drive diskID, after
// the data crosses the host link. Writes invalidate any overlapping
// cache extents and bypass prefetching; they share the per-disk queue
// with reads.
func (c *Controller) SubmitWrite(diskID int, off, n int64, done func(Result)) error {
	if diskID < 0 || diskID >= len(c.disks) {
		return fmt.Errorf("controller: disk %d out of range [0,%d)", diskID, len(c.disks))
	}
	d := c.disks[diskID]
	if off < 0 || n <= 0 || off+n > d.Capacity() {
		return fmt.Errorf("controller: %w: off=%d len=%d cap=%d", disk.ErrOutOfRange, off, n, d.Capacity())
	}
	start := c.eng.Now()
	c.stats.Requests++
	c.stats.Writes++
	c.stats.BytesDisks += n
	c.stats.BytesHost += n
	if c.obs != nil {
		c.obs.requests.Inc()
		c.obs.writes.Inc()
		c.obs.diskBytes.Add(n)
		c.obs.hostBytes.Add(n)
	}

	// Stale extents covering the written range are dropped.
	for i := range c.extents {
		e := &c.extents[i]
		if !e.reserved && e.end > e.start && e.diskID == diskID && off < e.end && off+n > e.start {
			c.extents[i] = extent{}
		}
	}

	// Host -> controller transfer first, then the drive write through
	// the per-disk queue.
	c.link.Transfer(n, func() {
		job := &fetchJob{diskID: diskID, off: off, n: n, fetch: n, start: start, write: true, done: done}
		job.fl = &inflight{diskID: diskID} // zero-width: never coalesces
		c.pending[diskID] = append(c.pending[diskID], job)
		c.dispatchDisk(diskID)
	})
	return nil
}

// lookupInflight returns an in-flight fetch fully covering the range.
func (c *Controller) lookupInflight(diskID int, off, n int64) *inflight {
	for _, fl := range c.inflight {
		if fl.diskID == diskID && off >= fl.start && off+n <= fl.end {
			return fl
		}
	}
	return nil
}

// removeInflight drops a completed fetch from the in-flight list.
func (c *Controller) removeInflight(fl *inflight) {
	for i, cur := range c.inflight {
		if cur == fl {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			return
		}
	}
}

// lookupExtent reports whether a cached extent fully covers the range,
// refreshing its LRU position.
func (c *Controller) lookupExtent(diskID int, off, n int64) bool {
	for i := range c.extents {
		e := &c.extents[i]
		if !e.reserved && e.end > e.start && e.diskID == diskID && off >= e.start && off+n <= e.end {
			c.seq++
			e.useSeq = c.seq
			return true
		}
	}
	return false
}

// reserveExtent claims a cache extent for a fetch, preferring free
// extents, then LRU resident data, and — only when every extent is a
// reservation — stealing the LRU reservation. It returns the extent
// and the reservation token the fill must present to commit.
func (c *Controller) reserveExtent(diskID int, start, end int64) (*extent, uint64) {
	victim := -1
	for i := range c.extents {
		e := &c.extents[i]
		if e.reserved {
			continue
		}
		if e.end == e.start {
			victim = i
			break
		}
		if victim < 0 || e.useSeq < c.extents[victim].useSeq {
			victim = i
		}
	}
	if victim < 0 {
		// All extents are pinned by other in-flight fetches: steal the
		// oldest reservation. Its fill will be dropped on completion.
		victim = 0
		for i := range c.extents {
			if c.extents[i].useSeq < c.extents[victim].useSeq {
				victim = i
			}
		}
	}
	c.seq++
	c.extents[victim] = extent{diskID: diskID, start: start, end: end, useSeq: c.seq, reserved: true}
	return &c.extents[victim], c.seq
}

// InvalidateCache drops all cached extents.
func (c *Controller) InvalidateCache() {
	for i := range c.extents {
		c.extents[i] = extent{}
	}
}
