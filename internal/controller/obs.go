package controller

import "seqstream/internal/obs"

// Obs mirrors the controller's Stats counters into a metric registry
// and publishes two live gauges: the fetches waiting for a drive queue
// slot and the fetches outstanding at the drives. All instruments are
// atomic, so the registry may be scraped from outside the engine loop
// while a simulation runs.
type Obs struct {
	requests  *obs.Counter
	writes    *obs.Counter
	cacheHits *obs.Counter
	coalesced *obs.Counter
	misses    *obs.Counter
	hostBytes *obs.Counter
	diskBytes *obs.Counter

	queueDepth *obs.Gauge
	inflight   *obs.Gauge
}

// NewObs registers the controller metric families on reg. Registration
// is idempotent: repeated controllers over one registry (one per
// experiment cell, say) share families. On a real-device node these
// families exist but read zero — the simulated controller is the only
// writer.
func NewObs(reg *obs.Registry) *Obs {
	return &Obs{
		requests:  reg.Counter("seqstream_controller_requests_total", "requests accepted by the controller"),
		writes:    reg.Counter("seqstream_controller_writes_total", "write requests accepted"),
		cacheHits: reg.Counter("seqstream_controller_cache_hits_total", "requests served from a resident cache extent"),
		coalesced: reg.Counter("seqstream_controller_coalesced_total", "requests absorbed by an in-flight fetch"),
		misses:    reg.Counter("seqstream_controller_misses_total", "requests that initiated a drive fetch"),
		hostBytes: reg.Counter("seqstream_controller_host_bytes_total", "bytes delivered over the host link"),
		diskBytes: reg.Counter("seqstream_controller_disk_bytes_total", "bytes fetched from drives, including prefetch"),

		queueDepth: reg.Gauge("seqstream_controller_queue_depth", "fetches waiting for a drive queue slot"),
		inflight:   reg.Gauge("seqstream_controller_inflight_fetches", "fetches outstanding at the drives"),
	}
}

// SetObs attaches instruments to the controller; nil detaches. Call
// before the simulation starts (it is an engine-loop mutation).
func (c *Controller) SetObs(o *Obs) { c.obs = o }

// syncQueueGauges publishes the live queue state. Engine loop only.
func (c *Controller) syncQueueGauges() {
	if c.obs == nil {
		return
	}
	pending, active := 0, 0
	for i := range c.pending {
		pending += len(c.pending[i])
		active += c.active[i]
	}
	c.obs.queueDepth.Set(int64(pending))
	c.obs.inflight.Set(int64(active))
}
