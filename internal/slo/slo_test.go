package slo

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced monotonic clock for deterministic
// window tests.
type fakeClock struct {
	mu sync.Mutex
	at time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.at += d
	c.mu.Unlock()
}

func testLedger(t *testing.T, mutate func(*Config)) (*Ledger, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	cfg := Config{
		Target:     time.Millisecond,
		ReadAhead:  1 << 20,
		FastWindow: time.Second,
		MidWindow:  4 * time.Second,
		SlowWindow: 8 * time.Second,
		MinSamples: 8,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	l, err := NewLedger(cfg, clk.Now, 4)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	return l, clk
}

func TestConfigValidate(t *testing.T) {
	good := Config{Target: time.Millisecond}
	good.ApplyDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
	if good.Objective != DefaultObjective || good.FastBurn != DefaultFastBurn {
		t.Fatalf("defaults not applied: %+v", good)
	}
	bad := []Config{
		{},
		{Target: time.Millisecond, LateFactor: 0.5},
		{Target: time.Millisecond, Objective: 1.5},
		{Target: time.Millisecond, FastBurn: -1},
	}
	for i, c := range bad {
		if c.LateFactor == 0 {
			c.LateFactor = DefaultLateFactor
		}
		if c.Objective == 0 {
			c.Objective = DefaultObjective
		}
		if c.FastWindow == 0 {
			c.FastWindow, c.MidWindow, c.SlowWindow = DefaultFastWindow, DefaultMidWindow, DefaultSlowWindow
		}
		if c.FastBurn == 0 {
			c.FastBurn, c.SlowBurn = DefaultFastBurn, DefaultSlowBurn
		}
		if c.SlowBurn == 0 {
			c.SlowBurn = DefaultSlowBurn
		}
		if c.MinSamples == 0 {
			c.MinSamples = 1
		}
		if c.TopStreams == 0 {
			c.TopStreams = 1
		}
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
}

func TestDeadlineModel(t *testing.T) {
	l, _ := testLedger(t, nil)
	target := time.Millisecond
	if got := l.Deadline(1 << 20); got != target {
		t.Fatalf("full read-ahead deadline = %v, want %v", got, target)
	}
	if got := l.Deadline(2 << 20); got != target {
		t.Fatalf("over-length deadline = %v, want %v", got, target)
	}
	// Half a read-ahead is due at base/2 + base/2 * 1/2 = 3/4 target.
	if got := l.Deadline(512 << 10); got != 3*target/4 {
		t.Fatalf("half-length deadline = %v, want %v", got, 3*target/4)
	}
	// Tiny requests floor at base/2.
	if got := l.Deadline(0); got != target/2 {
		t.Fatalf("zero-length deadline = %v, want %v", got, target/2)
	}
	// Without a classified rate the deadline is flat.
	flat, _ := testLedger(t, func(c *Config) { c.ReadAhead = 0 })
	if got := flat.Deadline(1); got != target {
		t.Fatalf("rateless deadline = %v, want %v", got, target)
	}
	// Nil ledger is inert.
	var nilL *Ledger
	if got := nilL.Deadline(123); got != 0 {
		t.Fatalf("nil deadline = %v", got)
	}
}

func TestScoreVerdicts(t *testing.T) {
	l, _ := testLedger(t, nil)
	st := l.Admit(7, 2, 0)
	length := int64(1 << 20) // deadline = 1ms, missed beyond 4ms

	if v, late := l.Score(st, 2, length, 500*time.Microsecond, true); v != OnTime || late != 0 {
		t.Fatalf("fast delivery: %v lateness %v", v, late)
	}
	if v, late := l.Score(st, 2, length, 2*time.Millisecond, false); v != Late || late != time.Millisecond {
		t.Fatalf("late delivery: %v lateness %v", v, late)
	}
	if v, late := l.Score(st, 2, length, 10*time.Millisecond, false); v != Missed || late != 9*time.Millisecond {
		t.Fatalf("missed delivery: %v lateness %v", v, late)
	}
	// Exactly at the deadline is on time; one nanosecond over is not.
	if v, _ := l.Score(st, 2, length, time.Millisecond, false); v != OnTime {
		t.Fatalf("at-deadline delivery scored %v", v)
	}
	if v, late := l.Score(st, 2, length, time.Millisecond+1, false); v != Late || late < 2 {
		t.Fatalf("barely-late delivery: %v lateness %v (want >= 2ns clamp)", v, late)
	}
	if late := l.ScoreError(st, 2, length, 100*time.Microsecond); late < 2 {
		t.Fatalf("error lateness %v, want clamped >= 2ns", late)
	}

	onTime, late, missed := l.Totals()
	if onTime != 2 || late != 2 || missed != 2 {
		t.Fatalf("totals = %d/%d/%d, want 2/2/2", onTime, late, missed)
	}
	if got := l.disks[2].hits.Load(); got != 1 {
		t.Fatalf("buffer hits = %d, want 1", got)
	}
	if got := st.worstLate.Load(); got != int64(9*time.Millisecond) {
		t.Fatalf("worst lateness = %d", got)
	}

	rep := l.Report()
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version = %d", rep.SchemaVersion)
	}
	if rep.Node.Total != 6 || rep.Node.OnTime != 2 {
		t.Fatalf("node SLI = %+v", rep.Node)
	}
	if len(rep.Disks) != 1 || rep.Disks[0].Disk != 2 || rep.Disks[0].Total != 6 {
		t.Fatalf("disk SLIs = %+v", rep.Disks)
	}
	if len(rep.Streams) != 1 || rep.Streams[0].Stream != 7 || rep.Streams[0].Missed != 2 {
		t.Fatalf("stream SLIs = %+v", rep.Streams)
	}

	// Nil ledger and nil stream entries are inert.
	var nilL *Ledger
	if v, late := nilL.Score(nil, 0, 1, time.Hour, false); v != OnTime || late != 0 {
		t.Fatalf("nil ledger scored %v/%v", v, late)
	}
	l.Score(nil, 99, length, time.Millisecond, false) // out-of-range disk, nil stream: no panic
}

func TestVerdictString(t *testing.T) {
	if OnTime.String() != "on_time" || Late.String() != "late" || Missed.String() != "missed" {
		t.Fatalf("verdict strings: %v %v %v", OnTime, Late, Missed)
	}
}

func TestAdmitRetire(t *testing.T) {
	l, _ := testLedger(t, nil)
	a := l.Admit(1, 0, 0)
	b := l.Admit(2, 1, 0)
	if l.Live() != 2 {
		t.Fatalf("live = %d, want 2", l.Live())
	}
	l.Retire(a)
	l.Retire(a) // idempotent
	l.Retire(nil)
	if l.Live() != 1 {
		t.Fatalf("live = %d, want 1", l.Live())
	}
	rep := l.Report()
	if rep.Admitted != 2 || rep.Retired != 1 || rep.LiveStreams != 1 {
		t.Fatalf("report lifecycle = %+v", rep)
	}
	// Retired streams keep contributing nothing to the live list.
	if len(rep.Streams) != 1 || rep.Streams[0].Stream != b.id {
		t.Fatalf("live stream list = %+v", rep.Streams)
	}
}

func TestBurnRateTripAndRecovery(t *testing.T) {
	l, clk := testLedger(t, nil)
	st := l.Admit(1, 0, 0)
	length := int64(1 << 20)

	// Healthy traffic: no alert. On-time scores batch in the disk's
	// pending state, so publish them the way the scheduler does before
	// reading a snapshot.
	for i := 0; i < 50; i++ {
		l.Score(st, 0, length, 100*time.Microsecond, true)
		clk.Advance(10 * time.Millisecond)
	}
	l.Flush(0)
	s := l.Evaluate()
	if s.FastActive || s.SlowActive || len(s.Tripped) != 0 {
		t.Fatalf("healthy run alerted: %+v", s)
	}
	if s.Fast.Total == 0 || s.Fast.Violations != 0 {
		t.Fatalf("healthy fast window: %+v", s.Fast)
	}

	// Burn: disk 3 delivers everything 10x past deadline.
	for i := 0; i < 50; i++ {
		l.Score(st, 3, length, 10*time.Millisecond, false)
		clk.Advance(10 * time.Millisecond)
	}
	s = l.Evaluate()
	if !s.FastActive {
		t.Fatalf("fast alert did not activate: %+v", s)
	}
	if len(s.Tripped) == 0 || s.Tripped[0].Severity != "fast" {
		t.Fatalf("expected fast trip, got %+v", s.Tripped)
	}
	if s.WorstDisk != 3 {
		t.Fatalf("worst disk = %d, want 3", s.WorstDisk)
	}
	// Still active on the next evaluation, but no new trip edge.
	s = l.Evaluate()
	if !s.FastActive || len(s.Tripped) != 0 {
		t.Fatalf("second evaluation should hold without re-tripping: %+v", s)
	}
	// Report is read-only: it must not consume future trip edges.
	if rep := l.Report(); !rep.Burn.FastActive || len(rep.Burn.Tripped) != 0 {
		t.Fatalf("report mutated alert state: %+v", rep.Burn)
	}

	// Recovery: let the fast and mid windows age out, serve on time.
	clk.Advance(10 * time.Second)
	for i := 0; i < 50; i++ {
		l.Score(st, 0, length, 100*time.Microsecond, true)
		clk.Advance(10 * time.Millisecond)
	}
	l.Flush(0)
	s = l.Evaluate()
	if s.FastActive {
		t.Fatalf("fast alert stuck after recovery: %+v", s)
	}

	// A second incident trips a fresh edge.
	for i := 0; i < 50; i++ {
		l.Score(st, 3, length, 10*time.Millisecond, false)
		clk.Advance(10 * time.Millisecond)
	}
	s = l.Evaluate()
	if !s.FastActive || len(s.Tripped) == 0 {
		t.Fatalf("second incident did not re-trip: %+v", s)
	}
}

func TestSlowBurnAlert(t *testing.T) {
	l, clk := testLedger(t, func(c *Config) {
		// Make the fast threshold unreachable so only the slow alert
		// can fire.
		c.FastBurn = 1e9
	})
	st := l.Admit(1, 0, 0)
	for i := 0; i < 100; i++ {
		l.Score(st, 1, 1<<20, 20*time.Millisecond, false)
		clk.Advance(50 * time.Millisecond)
	}
	s := l.Evaluate()
	if s.FastActive {
		t.Fatalf("fast alert fired below threshold: %+v", s)
	}
	if !s.SlowActive || len(s.Tripped) != 1 || s.Tripped[0].Severity != "slow" {
		t.Fatalf("slow alert missing: %+v", s)
	}
}

func TestMinSamplesGate(t *testing.T) {
	l, _ := testLedger(t, func(c *Config) { c.MinSamples = 1000 })
	st := l.Admit(1, 0, 0)
	for i := 0; i < 20; i++ {
		l.Score(st, 0, 1<<20, time.Hour, false)
	}
	if s := l.Evaluate(); s.FastActive || s.SlowActive {
		t.Fatalf("alerts fired below the sample gate: %+v", s)
	}
}

// TestLedgerRetirementConcurrent drives admission, scoring, and
// retirement from concurrent goroutines and checks no ledger entries
// leak. Scoring and retirement for one disk serialize through a
// per-disk mutex — the scheduler's shard-lock discipline the ledger's
// pending batches rely on — while Report races the writers lock-free.
// Run under -race.
func TestLedgerRetirementConcurrent(t *testing.T) {
	l, _ := testLedger(t, nil)
	const (
		workers = 8
		rounds  = 200
	)
	var diskMu [4]sync.Mutex // stands in for the owning shard's lock
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			disk := w % 4
			for i := 0; i < rounds; i++ {
				id := int32(w*rounds + i)
				st := l.Admit(id, disk, 0)
				for j := 0; j < 4; j++ {
					diskMu[disk].Lock()
					l.Score(st, disk, 1<<20, time.Duration(j)*time.Millisecond, j%2 == 0)
					diskMu[disk].Unlock()
				}
				if i%3 == 0 {
					l.Report() // reader racing the writers
				}
				diskMu[disk].Lock()
				l.Retire(st)
				diskMu[disk].Unlock()
			}
		}(w)
	}
	wg.Wait()
	if got := l.Live(); got != 0 {
		t.Fatalf("leaked %d ledger entries after retirement", got)
	}
	rep := l.Report()
	if rep.Admitted != workers*rounds || rep.Retired != workers*rounds {
		t.Fatalf("lifecycle counts = %d admitted / %d retired, want %d each",
			rep.Admitted, rep.Retired, workers*rounds)
	}
	onTime, late, missed := l.Totals()
	if onTime+late+missed != workers*rounds*4 {
		t.Fatalf("scored %d deliveries, want %d", onTime+late+missed, workers*rounds*4)
	}
}

func TestScoreZeroAlloc(t *testing.T) {
	l, _ := testLedger(t, nil)
	st := l.Admit(1, 0, 0)
	avg := testing.AllocsPerRun(500, func() {
		l.Score(st, 0, 1<<20, 500*time.Microsecond, true)
		l.Score(st, 0, 1<<20, 2*time.Millisecond, false)
	})
	if avg != 0 {
		t.Fatalf("Score allocates %.2f/op, want 0", avg)
	}
}
