// Package slo is the storage node's service-level-objective engine:
// every admitted stream carries a deadline model derived from its
// classified rate (the paper's R), every delivery is scored
// on-time/late/missed on the shard completion path, and the scores
// feed per-stream/per-disk/node SLIs plus SRE-style multi-window
// burn-rate alerts.
//
// The scoring path is built to sit beside the scheduler's other hot-
// path telemetry: Score is allocation-free and, in the steady state,
// atomic-free — scores accumulate in a per-disk pending batch of plain
// fields and publish in bulk (see diskLedger). The batch relies on the
// scheduler's own serialization: Score, ScoreError, Retire, and Flush
// for one disk must run under that disk's shard lock; calls for
// different disks are independent. Readers — burn-rate evaluation,
// report building, totals — take no part in that lock and see the
// published state, at most one batch behind. Only stream admission/
// retirement and alert-edge bookkeeping take the ledger mutex.
//
// Lateness, not latency, is what the windows hold: an on-time delivery
// observes zero, a violating delivery observes how far past its
// deadline it landed. Bucket 0 of the power-of-two histogram therefore
// counts the window's on-time deliveries, which is exactly the good/
// total split a burn rate needs — the same obs.WindowedHistogram
// machinery the health engine already runs, reused unchanged.
package slo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seqstream/internal/obs"
)

// SchemaVersion stamps the JSON report format (bundles embed reports,
// so offline tooling checks it).
const SchemaVersion = 1

// Defaults for Config zero fields.
const (
	// DefaultLateFactor: a delivery later than LateFactor times its
	// deadline counts missed, not merely late.
	DefaultLateFactor = 4.0
	// DefaultObjective is the on-time delivery objective (three nines).
	DefaultObjective = 0.999
	// DefaultFastWindow/DefaultMidWindow/DefaultSlowWindow are the
	// SRE-style multi-window burn-rate horizons: the fast (paging)
	// alert requires both the 5m and 1h windows to burn, the slow
	// (ticket) alert watches the 6h window alone.
	DefaultFastWindow = 5 * time.Minute
	DefaultMidWindow  = time.Hour
	DefaultSlowWindow = 6 * time.Hour
	// DefaultFastBurn is the burn-rate threshold for the fast alert:
	// 14.4x spends a 30-day error budget in 2 days.
	DefaultFastBurn = 14.4
	// DefaultSlowBurn is the burn-rate threshold for the slow alert:
	// 6x spends a 30-day budget in 5 days.
	DefaultSlowBurn = 6.0
	// DefaultMinSamples is how many deliveries a window must hold
	// before its burn rate can trip an alert.
	DefaultMinSamples = 32
	// DefaultTopStreams bounds the worst-stream list in reports.
	DefaultTopStreams = 8
	// diskMinSamples is how many deliveries a disk's fast window must
	// hold before the disk can be ranked for attribution.
	diskMinSamples = 8
)

// Config parameterizes a Ledger.
type Config struct {
	// Target is the base delivery deadline: a request of R bytes (one
	// read-ahead) is due Target after submission, shorter requests
	// proportionally sooner — see Deadline. Required.
	Target time.Duration
	// ReadAhead is the stream rate R the deadline scales against; a
	// non-positive value drops the length term (deadline = Target).
	ReadAhead int64
	// LateFactor marks the late/missed boundary (default
	// DefaultLateFactor).
	LateFactor float64
	// Objective is the on-time delivery objective in (0, 1) (default
	// DefaultObjective).
	Objective float64
	// FastWindow/MidWindow/SlowWindow are the burn-rate horizons
	// (defaults DefaultFastWindow/DefaultMidWindow/DefaultSlowWindow).
	FastWindow time.Duration
	MidWindow  time.Duration
	SlowWindow time.Duration
	// FastBurn/SlowBurn are the alert thresholds (defaults
	// DefaultFastBurn/DefaultSlowBurn).
	FastBurn float64
	SlowBurn float64
	// WindowBuckets splits each window into ring slots (default
	// obs.DefaultWindowBuckets).
	WindowBuckets int
	// MinSamples gates alerting on window population (default
	// DefaultMinSamples).
	MinSamples int64
	// TopStreams bounds the worst-stream list in reports (default
	// DefaultTopStreams).
	TopStreams int
}

// ApplyDefaults fills zero fields.
func (c *Config) ApplyDefaults() {
	if c.LateFactor == 0 {
		c.LateFactor = DefaultLateFactor
	}
	if c.Objective == 0 {
		c.Objective = DefaultObjective
	}
	if c.FastWindow == 0 {
		c.FastWindow = DefaultFastWindow
	}
	if c.MidWindow == 0 {
		c.MidWindow = DefaultMidWindow
	}
	if c.SlowWindow == 0 {
		c.SlowWindow = DefaultSlowWindow
	}
	if c.FastBurn == 0 {
		c.FastBurn = DefaultFastBurn
	}
	if c.SlowBurn == 0 {
		c.SlowBurn = DefaultSlowBurn
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.TopStreams == 0 {
		c.TopStreams = DefaultTopStreams
	}
}

// Validate reports configuration errors (call ApplyDefaults first).
func (c Config) Validate() error {
	switch {
	case c.Target <= 0:
		return errors.New("slo: target deadline must be positive")
	case c.LateFactor < 1:
		return errors.New("slo: late factor must be >= 1")
	case c.Objective <= 0 || c.Objective >= 1:
		return errors.New("slo: objective must be in (0, 1)")
	case c.FastWindow <= 0 || c.MidWindow <= 0 || c.SlowWindow <= 0:
		return errors.New("slo: burn-rate windows must be positive")
	case c.FastBurn <= 0 || c.SlowBurn <= 0:
		return errors.New("slo: burn thresholds must be positive")
	case c.MinSamples < 1:
		return errors.New("slo: min samples must be >= 1")
	case c.TopStreams < 1:
		return errors.New("slo: top streams must be >= 1")
	}
	return nil
}

// Verdict classifies one delivery against its deadline.
type Verdict uint8

// Verdicts, in increasing severity.
const (
	OnTime Verdict = iota
	Late
	Missed
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case OnTime:
		return "on_time"
	case Late:
		return "late"
	case Missed:
		return "missed"
	default:
		return "verdict?"
	}
}

// sloFlushEvery is how many pending on-time deliveries a disk batches
// before publishing them. The batch keeps the hot path to plain
// increments (no atomics, no window observes) and amortizes the flush
// — three window feeds plus the counter publishes — down to fractions
// of a nanosecond per delivery. Violations always flush immediately,
// so staleness only ever hides healthy traffic from the windows, never
// an incident.
const sloFlushEvery = 128

// StreamLedger is one admitted stream's SLO state: published atomics
// the report path reads lock-free, plus a pending batch the owning
// shard accumulates under its own lock (see diskLedger for the
// serialization contract).
type StreamLedger struct {
	id         int32
	disk       int
	admittedAt time.Duration

	onTime    atomic.Int64
	late      atomic.Int64
	missed    atomic.Int64
	hits      atomic.Int64
	worstLate atomic.Int64 // nanoseconds

	// Pending batch: plain fields owned by the disk's scheduler shard,
	// published by diskLedger flushes. Never read outside a flush.
	pendOnTime int64
	pendLate   int64
	pendMissed int64
	pendHits   int64
	pendWorst  int64
	pendDirty  bool
}

// diskLedger is one disk's scoring shard: published counters and
// fast/mid/slow lateness windows, plus a pending batch of unpublished
// scores. Scheduler shards own disks exclusively (disk→shard is a
// static mapping and all stream work runs under the shard lock), so
// the batch needs no synchronization of its own: Score/ScoreError/
// Retire for one disk are serialized by that lock, and only they touch
// the pending fields. Readers (Evaluate, Report, Totals) see the
// published atomics and windows, at most one batch behind.
//
// The batch is what keeps scoring inside the 1% overhead budget: a
// first cut booked every delivery straight into counters and three
// shared windows, and the per-delivery atomics plus clock reads cost
// >20% of request throughput at bench scale.
type diskLedger struct {
	onTime atomic.Int64
	late   atomic.Int64
	missed atomic.Int64
	hits   atomic.Int64

	fast *obs.WindowedHistogram
	mid  *obs.WindowedHistogram
	slow *obs.WindowedHistogram

	// Pending batch, owned by the disk's scheduler shard.
	pendOnTime   int64
	pendLate     int64
	pendMissed   int64
	pendHits     int64
	pendViolLate int64 // last unpublished violation's lateness (at most one)
	dirty        []*StreamLedger
}

// Ledger is the node's SLO engine. Build one per core server with
// NewLedger; every accessor is safe on a nil receiver so call sites
// stay unconditional.
type Ledger struct {
	cfg Config
	now func() time.Duration

	// Deadline model, precomputed to integer math for the hot path:
	// deadline(L) = base/2 + (base/2)*L/ra nanoseconds (floored at
	// base/2, capped at base), missed when lat*1024 > deadline*lateX1024.
	// The division by ra is replaced with a fixed-point reciprocal
	// multiply (raScale, raShift) — a 64-bit divide per delivery is
	// real money on this path.
	base      int64
	baseHalf  int64
	ra        int64
	raScale   int64
	lateX1024 int64

	// disks are the per-disk scoring shards; each is its own heap
	// allocation so neighboring disks do not share cachelines.
	disks []*diskLedger

	mu       sync.Mutex
	streams  map[int32]*StreamLedger //lint:guardedby mu
	admitted int64                   //lint:guardedby mu
	retired  int64                   //lint:guardedby mu
	fastOn   bool                    //lint:guardedby mu
	slowOn   bool                    //lint:guardedby mu
}

// NewLedger builds a ledger for a node with the given disk count. now
// must be the node's monotonic clock (a simulation clock or a real
// clock's Now), shared with the windows so virtual-time runs evaluate
// deterministically.
func NewLedger(cfg Config, now func() time.Duration, disks int) (*Ledger, error) {
	if now == nil {
		return nil, errors.New("slo: nil clock")
	}
	if disks <= 0 {
		return nil, errors.New("slo: disk count must be positive")
	}
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Ledger{
		cfg:       cfg,
		now:       now,
		base:      int64(cfg.Target),
		baseHalf:  int64(cfg.Target) / 2,
		ra:        cfg.ReadAhead,
		lateX1024: int64(cfg.LateFactor * 1024),
		streams:   make(map[int32]*StreamLedger),
	}
	if l.ra > 0 && l.baseHalf < 1<<(62-raShift) {
		// Targets big enough to overflow the fixed-point product (about
		// an hour) keep the exact-division fallback in deadlineNs.
		l.raScale = (l.baseHalf << raShift) / l.ra
	}
	l.disks = make([]*diskLedger, disks)
	for i := range l.disks {
		// The dirty list is preallocated so steady-state scoring stays
		// allocation-free; it grows only when a disk serves more
		// concurrent streams than the cap between two flushes.
		dl := &diskLedger{dirty: make([]*StreamLedger, 0, 16)}
		var err error
		if dl.fast, err = obs.NewWindowedHistogram(now, cfg.FastWindow, cfg.WindowBuckets); err != nil {
			return nil, err
		}
		if dl.mid, err = obs.NewWindowedHistogram(now, cfg.MidWindow, cfg.WindowBuckets); err != nil {
			return nil, err
		}
		if dl.slow, err = obs.NewWindowedHistogram(now, cfg.SlowWindow, cfg.WindowBuckets); err != nil {
			return nil, err
		}
		l.disks[i] = dl
	}
	return l, nil
}

// Config returns the effective configuration (defaults applied). Zero
// on a nil ledger.
func (l *Ledger) Config() Config {
	if l == nil {
		return Config{}
	}
	return l.cfg
}

// raShift is the fixed-point precision of the deadline model's
// reciprocal multiply: deadlines are exact to within length/2^20 ns of
// the true division, far below any deadline anyone configures.
const raShift = 20

// deadlineNs is the hot-path deadline model: a request of ReadAhead
// bytes is due base ns after submission, shorter requests sooner in
// proportion — the client consuming at its classified rate R drains
// one read-ahead per Target, so each L-byte slice of it is due within
// the slice's share. A floor of base/2 keeps tiny requests from
// getting microsecond deadlines no real client expects.
func (l *Ledger) deadlineNs(length int64) int64 {
	if l.ra <= 0 || length >= l.ra {
		return l.base
	}
	if l.raScale > 0 {
		return l.baseHalf + (length*l.raScale)>>raShift
	}
	return l.baseHalf + l.baseHalf*length/l.ra
}

// Deadline returns the delivery deadline for a request of the given
// length. Zero on a nil ledger.
func (l *Ledger) Deadline(length int64) time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.deadlineNs(length))
}

// Score classifies one successful delivery against its deadline and
// books it on the stream (nil-safe) and disk ledgers plus the lateness
// windows. It is allocation-free and batch-cheap — the shard calls it
// on the buffer-hit path, under the shard lock that serializes the
// disk (see the package comment). The returned lateness is zero for
// on-time deliveries.
func (l *Ledger) Score(st *StreamLedger, disk int, length int64, lat time.Duration, fromBuffer bool) (Verdict, time.Duration) {
	if l == nil {
		return OnTime, 0
	}
	d := l.deadlineNs(length)
	lateNs := int64(lat) - d
	if lateNs <= 0 {
		l.bookOnTime(st, disk, fromBuffer)
		return OnTime, 0
	}
	v := Late
	if int64(lat)*1024 > d*l.lateX1024 {
		v = Missed
	}
	if lateNs < 2 {
		// Bucket 0 of the lateness histograms means "on time"; clamp a
		// sub-2ns violation out of it so window ratios stay exact.
		lateNs = 2
	}
	l.book(st, disk, v, lateNs, fromBuffer)
	return v, time.Duration(lateNs)
}

// ScoreError books a failed delivery: an errored request can never
// meet its objective, so it scores as missed regardless of how fast
// the failure arrived. Returns the lateness observed into the windows.
func (l *Ledger) ScoreError(st *StreamLedger, disk int, length int64, lat time.Duration) time.Duration {
	if l == nil {
		return 0
	}
	lateNs := int64(lat) - l.deadlineNs(length)
	if lateNs < 2 {
		lateNs = 2
	}
	l.book(st, disk, Missed, lateNs, false)
	return time.Duration(lateNs)
}

// bookOnTime accumulates one on-time delivery — the overwhelmingly
// common case — into the owning disk's pending batch: a handful of
// plain increments, no atomics, no window observes, no verdict
// branching. Those are paid once per sloFlushEvery deliveries.
func (l *Ledger) bookOnTime(st *StreamLedger, disk int, fromBuffer bool) {
	if uint(disk) >= uint(len(l.disks)) {
		// Unattributable delivery (should not happen): book it on disk 0
		// rather than lose it from the node SLIs.
		disk = 0
	}
	dc := l.disks[disk]
	if st != nil {
		if !st.pendDirty {
			st.pendDirty = true
			dc.dirty = append(dc.dirty, st)
		}
		st.pendOnTime++
		if fromBuffer {
			st.pendHits++
		}
	}
	dc.pendOnTime++
	if fromBuffer {
		dc.pendHits++
	}
	if dc.pendOnTime >= sloFlushEvery {
		l.flushDisk(dc)
	}
}

// book accumulates one violating delivery into the owning disk's
// pending batch and flushes it immediately: violations are rare by
// construction (the objective is three nines) and the burn windows
// must see them promptly.
func (l *Ledger) book(st *StreamLedger, disk int, v Verdict, lateNs int64, fromBuffer bool) {
	if uint(disk) >= uint(len(l.disks)) {
		disk = 0
	}
	dc := l.disks[disk]
	if st != nil {
		if !st.pendDirty {
			st.pendDirty = true
			dc.dirty = append(dc.dirty, st)
		}
		if v == Late {
			st.pendLate++
		} else {
			st.pendMissed++
		}
		if fromBuffer {
			st.pendHits++
		}
		if lateNs > st.pendWorst {
			st.pendWorst = lateNs
		}
	}
	if v == Late {
		dc.pendLate++
	} else {
		dc.pendMissed++
	}
	if fromBuffer {
		dc.pendHits++
	}
	dc.pendViolLate = lateNs
	l.flushDisk(dc)
}

// flushDisk publishes a disk's pending batch: counters to the atomics,
// on-time zeros and the violation's lateness to the windows, dirty
// streams to their atomics. Caller owns the disk's serialization (the
// scheduler shard lock).
func (l *Ledger) flushDisk(dc *diskLedger) {
	if n := dc.pendOnTime; n > 0 {
		dc.onTime.Add(n)
		dc.fast.ObserveN(0, n)
		dc.mid.ObserveN(0, n)
		dc.slow.ObserveN(0, n)
		dc.pendOnTime = 0
	}
	if n := dc.pendLate; n > 0 {
		dc.late.Add(n)
		dc.pendLate = 0
	}
	if n := dc.pendMissed; n > 0 {
		dc.missed.Add(n)
		dc.pendMissed = 0
	}
	if n := dc.pendHits; n > 0 {
		dc.hits.Add(n)
		dc.pendHits = 0
	}
	if lateNs := dc.pendViolLate; lateNs > 0 {
		// At most one violation is ever pending (violations flush the
		// batch), so its exact lateness reaches the windows.
		late := time.Duration(lateNs)
		dc.fast.Observe(late)
		dc.mid.Observe(late)
		dc.slow.Observe(late)
		dc.pendViolLate = 0
	}
	for i, st := range dc.dirty {
		if n := st.pendOnTime; n > 0 {
			st.onTime.Add(n)
			st.pendOnTime = 0
		}
		if n := st.pendLate; n > 0 {
			st.late.Add(n)
			st.pendLate = 0
		}
		if n := st.pendMissed; n > 0 {
			st.missed.Add(n)
			st.pendMissed = 0
		}
		if n := st.pendHits; n > 0 {
			st.hits.Add(n)
			st.pendHits = 0
		}
		if w := st.pendWorst; w > 0 {
			st.pendWorst = 0
			// Single writer (the disk's shard), so load-then-store is
			// race-free; readers just need the atomic visibility.
			if w > st.worstLate.Load() {
				st.worstLate.Store(w)
			}
		}
		st.pendDirty = false
		dc.dirty[i] = nil
	}
	dc.dirty = dc.dirty[:0]
}

// Flush publishes one disk's pending batch. The caller must own the
// disk's serialization — the scheduler calls it per shard while it
// already holds the shard lock (stats snapshots), which is how cold
// readers see exact totals at run boundaries. Nil-safe.
func (l *Ledger) Flush(disk int) {
	if l == nil || disk < 0 || disk >= len(l.disks) {
		return
	}
	l.flushDisk(l.disks[disk])
}

// Admit registers a newly classified stream and returns its ledger
// entry for the shard to stamp on the stream. Nil on a nil ledger.
func (l *Ledger) Admit(id int32, disk int, now time.Duration) *StreamLedger {
	if l == nil {
		return nil
	}
	st := &StreamLedger{id: id, disk: disk, admittedAt: now}
	l.mu.Lock()
	l.streams[id] = st
	l.admitted++
	l.mu.Unlock()
	return st
}

// Retire removes a stream's ledger entry when the stream retires,
// rotates out for good, or is garbage-collected. Its cumulative scores
// stay in the node and disk totals. The caller must own the stream's
// disk serialization, like Score: retirement publishes the disk's
// pending batch so the stream's last scores cannot go dark with it.
// Safe on nil ledger or entry.
func (l *Ledger) Retire(st *StreamLedger) {
	if l == nil || st == nil {
		return
	}
	if st.disk >= 0 && st.disk < len(l.disks) {
		l.flushDisk(l.disks[st.disk])
	}
	l.mu.Lock()
	if _, ok := l.streams[st.id]; ok {
		delete(l.streams, st.id)
		l.retired++
	}
	l.mu.Unlock()
}

// Live returns the number of streams holding a ledger entry.
func (l *Ledger) Live() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.streams)
}

// FastSnapshot merges the per-disk fast lateness windows into one
// node-wide snapshot, for metric exposition (bucket 0 holds the
// window's on-time deliveries). Zero on a nil ledger.
func (l *Ledger) FastSnapshot() obs.HistogramSnapshot {
	var s obs.HistogramSnapshot
	if l == nil {
		return s
	}
	for _, dl := range l.disks {
		mergeSnapshot(&s, dl.fast.Snapshot())
	}
	return s
}

// mergeSnapshot folds src into dst. Per-disk snapshots are taken at
// slightly different instants, so the merge inherits the windows'
// approximate contract.
func mergeSnapshot(dst *obs.HistogramSnapshot, src obs.HistogramSnapshot) {
	dst.Count += src.Count
	dst.Sum += src.Sum
	for i := range src.Buckets {
		dst.Buckets[i] += src.Buckets[i]
	}
}

// Totals returns the node's cumulative (onTime, late, missed) scores,
// summed across the per-disk shards.
func (l *Ledger) Totals() (onTime, late, missed int64) {
	if l == nil {
		return 0, 0, 0
	}
	for _, dl := range l.disks {
		onTime += dl.onTime.Load()
		late += dl.late.Load()
		missed += dl.missed.Load()
	}
	return onTime, late, missed
}

// WindowStatus summarizes one burn-rate window.
type WindowStatus struct {
	Span        time.Duration `json:"span_ns"`
	Total       int64         `json:"total"`
	Violations  int64         `json:"violations"`
	BadRatio    float64       `json:"bad_ratio"`
	Burn        float64       `json:"burn_rate"`
	P99Lateness time.Duration `json:"p99_lateness_ns"`
}

// Alert is one burn-rate alert activation.
type Alert struct {
	// Severity is "fast" (page: the 5m and 1h windows both burn past
	// FastBurn) or "slow" (ticket: the 6h window burns past SlowBurn).
	Severity string  `json:"severity"`
	Burn     float64 `json:"burn_rate"`
	Detail   string  `json:"detail"`
}

// Status is one burn-rate evaluation.
type Status struct {
	At         time.Duration `json:"at_ns"`
	Objective  float64       `json:"objective"`
	Fast       WindowStatus  `json:"fast"`
	Mid        WindowStatus  `json:"mid"`
	Slow       WindowStatus  `json:"slow"`
	FastActive bool          `json:"fast_active"`
	SlowActive bool          `json:"slow_active"`
	// Tripped lists alerts that activated since the previous Evaluate
	// (empty on Report's read-only evaluations).
	Tripped []Alert `json:"tripped,omitempty"`
	// WorstDisk attributes the burn: the disk whose fast window holds
	// the highest violation ratio (-1 when no disk qualifies).
	WorstDisk         int     `json:"worst_disk"`
	WorstDiskBadRatio float64 `json:"worst_disk_bad_ratio,omitempty"`
}

// windowStatus reduces one horizon's per-disk lateness windows into a
// node-wide status: the snapshots merge (each disk is only written by
// its own shard, so the node view exists only here), then bucket 0
// holds the on-time deliveries (they observe zero lateness) and
// everything above it is a violation.
func (l *Ledger) windowStatus(span time.Duration, pick func(*diskLedger) *obs.WindowedHistogram) WindowStatus {
	// Tally, not Snapshot: evaluation runs every engine tick across
	// three horizons and every disk, and copying full bucket arrays
	// there eats into the same CPU budget the scoring batches protect.
	var total, good int64
	for _, dl := range l.disks {
		c, z := pick(dl).Tally()
		total += c
		good += z
	}
	ws := WindowStatus{Span: span, Total: total}
	if total == 0 {
		return ws
	}
	ws.Violations = total - good
	if ws.Violations < 0 {
		// Racy tally: totals can momentarily lead the bucket sum.
		ws.Violations = 0
	}
	ws.BadRatio = float64(ws.Violations) / float64(total)
	ws.Burn = ws.BadRatio / (1 - l.cfg.Objective)
	if ws.Violations > 0 {
		// Lateness quantiles need the full buckets; pay for the merge
		// only when there is lateness to rank (incidents, not steady
		// state).
		var snap obs.HistogramSnapshot
		for _, dl := range l.disks {
			mergeSnapshot(&snap, pick(dl).Snapshot())
		}
		ws.P99Lateness = snap.Quantile(0.99)
	}
	return ws
}

// worstDisk ranks the per-disk fast windows by violation ratio.
func (l *Ledger) worstDisk() (int, float64) {
	worst, ratio := -1, 0.0
	for d, dl := range l.disks {
		c, z := dl.fast.Tally()
		if c < diskMinSamples {
			continue
		}
		bad := c - z
		if bad <= 0 {
			continue
		}
		r := float64(bad) / float64(c)
		if worst < 0 || r > ratio {
			worst, ratio = d, r
		}
	}
	return worst, ratio
}

// Evaluate computes the burn-rate status and records alert-state
// transitions: Status.Tripped carries the alerts that activated since
// the previous Evaluate, which is the edge the health engine captures
// blackbox bundles on. Call it from one evaluator (the health tick);
// concurrent calls are safe but split the transition edges between
// them. Zero on a nil ledger.
func (l *Ledger) Evaluate() Status {
	if l == nil {
		return Status{WorstDisk: -1}
	}
	st := l.status()
	l.mu.Lock()
	if st.FastActive && !l.fastOn {
		st.Tripped = append(st.Tripped, Alert{
			Severity: "fast",
			Burn:     st.Fast.Burn,
			Detail: fmt.Sprintf("fast burn-rate alert: %.1fx over %v and %.1fx over %v (threshold %.1fx, objective %.4f)",
				st.Fast.Burn, l.cfg.FastWindow, st.Mid.Burn, l.cfg.MidWindow, l.cfg.FastBurn, l.cfg.Objective),
		})
	}
	if st.SlowActive && !l.slowOn {
		st.Tripped = append(st.Tripped, Alert{
			Severity: "slow",
			Burn:     st.Slow.Burn,
			Detail: fmt.Sprintf("slow burn-rate alert: %.1fx over %v (threshold %.1fx, objective %.4f)",
				st.Slow.Burn, l.cfg.SlowWindow, l.cfg.SlowBurn, l.cfg.Objective),
		})
	}
	l.fastOn, l.slowOn = st.FastActive, st.SlowActive
	l.mu.Unlock()
	return st
}

// status computes the current Status without touching alert state.
func (l *Ledger) status() Status {
	st := Status{
		At:        l.now(),
		Objective: l.cfg.Objective,
		Fast:      l.windowStatus(l.cfg.FastWindow, func(dl *diskLedger) *obs.WindowedHistogram { return dl.fast }),
		Mid:       l.windowStatus(l.cfg.MidWindow, func(dl *diskLedger) *obs.WindowedHistogram { return dl.mid }),
		Slow:      l.windowStatus(l.cfg.SlowWindow, func(dl *diskLedger) *obs.WindowedHistogram { return dl.slow }),
	}
	st.FastActive = st.Fast.Total >= l.cfg.MinSamples &&
		st.Fast.Burn >= l.cfg.FastBurn && st.Mid.Burn >= l.cfg.FastBurn
	st.SlowActive = st.Slow.Total >= l.cfg.MinSamples && st.Slow.Burn >= l.cfg.SlowBurn
	st.WorstDisk, st.WorstDiskBadRatio = l.worstDisk()
	return st
}

// SLI is one scope's cumulative service-level indicators.
type SLI struct {
	OnTime         int64   `json:"on_time"`
	Late           int64   `json:"late"`
	Missed         int64   `json:"missed"`
	Total          int64   `json:"total"`
	OnTimeRatio    float64 `json:"on_time_ratio"`
	BufferHits     int64   `json:"buffer_hits"`
	BufferHitRatio float64 `json:"buffer_hit_ratio"`
}

func makeSLI(onTime, late, missed, hits int64) SLI {
	s := SLI{OnTime: onTime, Late: late, Missed: missed, BufferHits: hits}
	s.Total = onTime + late + missed
	if s.Total > 0 {
		s.OnTimeRatio = float64(onTime) / float64(s.Total)
		s.BufferHitRatio = float64(hits) / float64(s.Total)
	}
	return s
}

// DiskSLI is one disk's rollup.
type DiskSLI struct {
	Disk int `json:"disk"`
	SLI
	// Window fields cover only the fast window, for attribution.
	WindowTotal      int64   `json:"window_total"`
	WindowViolations int64   `json:"window_violations"`
	WindowBadRatio   float64 `json:"window_bad_ratio"`
}

// StreamSLI is one live stream's rollup.
type StreamSLI struct {
	Stream int32 `json:"stream"`
	Disk   int   `json:"disk"`
	SLI
	WorstLateness time.Duration `json:"worst_lateness_ns"`
	AdmittedAt    time.Duration `json:"admitted_at_ns"`
}

// Report is the ledger's full JSON rollup, served inside /debug/health
// and embedded in blackbox bundles.
type Report struct {
	SchemaVersion int           `json:"schema_version"`
	At            time.Duration `json:"at_ns"`
	Target        time.Duration `json:"target_ns"`
	Objective     float64       `json:"objective"`
	Node          SLI           `json:"node"`
	Burn          Status        `json:"burn"`
	Disks         []DiskSLI     `json:"disks,omitempty"`
	// Streams lists the worst live streams by (missed, late, worst
	// lateness), bounded by Config.TopStreams.
	Streams     []StreamSLI `json:"streams,omitempty"`
	LiveStreams int         `json:"live_streams"`
	Admitted    int64       `json:"admitted"`
	Retired     int64       `json:"retired"`
}

// Report builds the rollup. It never mutates alert state, so scraping
// /debug/health cannot swallow a burn-rate trip the engine has not
// seen yet. Nil on a nil ledger.
func (l *Ledger) Report() *Report {
	if l == nil {
		return nil
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Target:        l.cfg.Target,
		Objective:     l.cfg.Objective,
		Burn:          l.status(),
	}
	rep.At = rep.Burn.At
	var nodeOnTime, nodeLate, nodeMissed, nodeHits int64
	for d, dc := range l.disks {
		onTime, late, missed, hits := dc.onTime.Load(), dc.late.Load(), dc.missed.Load(), dc.hits.Load()
		nodeOnTime += onTime
		nodeLate += late
		nodeMissed += missed
		nodeHits += hits
		s := makeSLI(onTime, late, missed, hits)
		if s.Total == 0 {
			continue
		}
		ds := DiskSLI{Disk: d, SLI: s}
		wc, wz := dc.fast.Tally()
		ds.WindowTotal = wc
		ds.WindowViolations = wc - wz
		if ds.WindowViolations < 0 {
			ds.WindowViolations = 0
		}
		if wc > 0 {
			ds.WindowBadRatio = float64(ds.WindowViolations) / float64(wc)
		}
		rep.Disks = append(rep.Disks, ds)
	}
	rep.Node = makeSLI(nodeOnTime, nodeLate, nodeMissed, nodeHits)

	l.mu.Lock()
	rep.LiveStreams = len(l.streams)
	rep.Admitted = l.admitted
	rep.Retired = l.retired
	live := make([]*StreamLedger, 0, len(l.streams))
	for _, st := range l.streams {
		live = append(live, st)
	}
	l.mu.Unlock()

	sort.Slice(live, func(i, j int) bool {
		a, b := live[i], live[j]
		am, bm := a.missed.Load(), b.missed.Load()
		if am != bm {
			return am > bm
		}
		al, bl := a.late.Load(), b.late.Load()
		if al != bl {
			return al > bl
		}
		aw, bw := a.worstLate.Load(), b.worstLate.Load()
		if aw != bw {
			return aw > bw
		}
		return a.id < b.id
	})
	if len(live) > l.cfg.TopStreams {
		live = live[:l.cfg.TopStreams]
	}
	for _, st := range live {
		rep.Streams = append(rep.Streams, StreamSLI{
			Stream:        st.id,
			Disk:          st.disk,
			SLI:           makeSLI(st.onTime.Load(), st.late.Load(), st.missed.Load(), st.hits.Load()),
			WorstLateness: time.Duration(st.worstLate.Load()),
			AdmittedAt:    st.admittedAt,
		})
	}
	return rep
}
