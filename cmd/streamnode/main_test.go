package main

import (
	"testing"
	"time"

	"seqstream/internal/netserve"
)

func testParams() buildParams {
	return buildParams{
		listen: "127.0.0.1:0", disks: 1, capacity: "256MiB",
		latency: 200 * time.Microsecond,
		memory:  "32MiB", ra: "1MiB", n: 1,
	}
}

func TestBuildAndServe(t *testing.T) {
	nd, err := build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	client, err := netserve.Dial(nd.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 256<<20, 4, 16, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams: %v", err)
	}
	if nd.core.Stats().Requests != 64 {
		t.Errorf("node requests = %d", nd.core.Stats().Requests)
	}
}

func TestBuildWithIngest(t *testing.T) {
	p := testParams()
	p.ingest = true
	p.chunk = "1MiB"
	nd, err := build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	client, err := netserve.Dial(nd.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 256<<20, 2, 32, 64<<10, netserve.FlagWrite); err != nil {
		t.Fatalf("write streams: %v", err)
	}
	nd.ingest.Flush()
	if nd.ingest.Stats().Writes != 64 {
		t.Errorf("ingest writes = %d", nd.ingest.Stats().Writes)
	}
}

func TestBuildBadParams(t *testing.T) {
	cases := []func(*buildParams){
		func(p *buildParams) { p.capacity = "bogus" },
		func(p *buildParams) { p.memory = "bogus" },
		func(p *buildParams) { p.ra = "bogus" },
		func(p *buildParams) { p.disks = 0 },
		func(p *buildParams) { p.ingest = true; p.chunk = "bogus" },
		func(p *buildParams) { p.files = "/nonexistent/nope.img" },
		func(p *buildParams) { p.listen = "256.256.256.256:1" },
	}
	for i, mutate := range cases {
		p := testParams()
		mutate(&p)
		nd, err := build(p)
		if err == nil {
			nd.Close()
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
