package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seqstream/internal/flight"
	"seqstream/internal/health"
	"seqstream/internal/netserve"
)

func testParams() buildParams {
	return buildParams{
		listen: "127.0.0.1:0", disks: 1, capacity: "256MiB",
		latency: 200 * time.Microsecond,
		memory:  "32MiB", ra: "1MiB", n: 1,
	}
}

func TestBuildAndServe(t *testing.T) {
	nd, err := build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	client, err := netserve.Dial(nd.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 256<<20, 4, 16, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams: %v", err)
	}
	if nd.core.Stats().Requests != 64 {
		t.Errorf("node requests = %d", nd.core.Stats().Requests)
	}
}

// fetch GETs a debug endpoint and returns the body.
func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDebugEndpoints(t *testing.T) {
	p := testParams()
	p.debugAddr = "127.0.0.1:0"
	p.healthInterval = 50 * time.Millisecond
	p.healthWindow = time.Minute
	nd, err := build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	client, err := netserve.Dial(nd.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 256<<20, 4, 16, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams: %v", err)
	}

	base := "http://" + nd.debug.Addr()
	metrics := fetch(t, base+"/metrics")
	for _, family := range []string{
		// The acceptance contract: core, controller, and netserve
		// families are all present on one real-device node.
		"seqstream_core_dispatched_streams",
		"seqstream_core_buffer_hits_total",
		"seqstream_core_memory_in_use_bytes",
		"seqstream_controller_queue_depth",
		"seqstream_netserve_request_latency_seconds_bucket",
		"# TYPE seqstream_core_requests_total counter",
		// Runtime health rides on the same registry.
		"seqstream_runtime_goroutines",
		"seqstream_runtime_heap_inuse_bytes",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	var vars map[string]any
	if err := json.Unmarshal([]byte(fetch(t, base+"/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, key := range []string{"metrics", "core", "netserve", "config", "spans"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}

	if body := fetch(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	idx := fetch(t, base+"/")
	if !strings.Contains(idx, "/metrics") {
		t.Errorf("index does not list endpoints: %q", idx)
	}
	if !strings.Contains(idx, "/debug/flight") {
		t.Errorf("index does not list /debug/flight: %q", idx)
	}

	// The always-on flight recorder saw the workload; the snapshot
	// endpoint serves it in both encodings.
	var snap flight.Snapshot
	if err := json.Unmarshal([]byte(fetch(t, base+"/debug/flight?format=json")), &snap); err != nil {
		t.Fatalf("/debug/flight?format=json is not a snapshot: %v", err)
	}
	if len(snap.Merged()) == 0 {
		t.Error("/debug/flight snapshot is empty after a streamed workload")
	}
	if _, err := flight.ReadSnapshot(strings.NewReader(fetch(t, base+"/debug/flight"))); err != nil {
		t.Errorf("binary /debug/flight does not parse: %v", err)
	}

	// The health engine runs and rolls the workload up at
	// /debug/health. Tick it directly rather than sleeping for the
	// 50ms poll.
	nd.health.Tick()
	var rep health.Report
	if err := json.Unmarshal([]byte(fetch(t, base+"/debug/health")), &rep); err != nil {
		t.Fatalf("/debug/health is not JSON: %v", err)
	}
	if rep.Verdict != health.VerdictHealthy {
		t.Errorf("healthy node reports %q: %+v", rep.Verdict, rep.Anomalies)
	}
	if len(rep.Disks) != 1 || rep.Disks[0].Fetch.Count == 0 {
		t.Errorf("/debug/health disk rollup empty: %+v", rep.Disks)
	}
	if rep.Request.Count == 0 {
		t.Errorf("/debug/health request window empty: %+v", rep.Request)
	}
	if rep.EventsSeen == 0 {
		t.Error("/debug/health saw no flight events")
	}
	prom := fetch(t, base+"/debug/health?format=prom")
	if !strings.Contains(prom, "seqstream_health_verdict 0") {
		t.Errorf("prom health output missing node verdict:\n%s", prom)
	}
	// The windowed metric families ride on /metrics too.
	metrics = fetch(t, base+"/metrics")
	for _, family := range []string{
		"seqstream_core_request_latency_window_seconds",
		"seqstream_core_fetch_latency_window_seconds",
		"seqstream_netserve_request_latency_window_seconds",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing windowed family %q", family)
		}
	}
}

// TestSpanLogSink exercises the -span-log path: spans recorded during
// a run must reach the file once the node closes, not die with the
// process.
func TestSpanLogSink(t *testing.T) {
	p := testParams()
	p.spanLogPath = filepath.Join(t.TempDir(), "spans.jsonl")
	nd, err := build(p)
	if err != nil {
		t.Fatal(err)
	}
	client, err := netserve.Dial(nd.srv.Addr())
	if err != nil {
		nd.Close()
		t.Fatal(err)
	}
	if err := client.RunStreams(0, 256<<20, 4, 16, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams: %v", err)
	}
	client.Close()
	nd.Close()

	data, err := os.ReadFile(p.spanLogPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("span log file is empty after shutdown")
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("span log line is not JSON: %v (%q)", err, lines[0])
	}
	if _, ok := ev["stage"]; !ok {
		t.Errorf("span entry missing stage: %q", lines[0])
	}
}

func TestStatsLine(t *testing.T) {
	p := testParams()
	nd, err := build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	line := statsLine(nd)
	for _, field := range []string{"requests=", "dispatched=", "queue=", "mem=", "conns="} {
		if !strings.Contains(line, field) {
			t.Errorf("stats line missing %q: %s", field, line)
		}
	}
}

func TestBuildWithIngest(t *testing.T) {
	p := testParams()
	p.ingest = true
	p.chunk = "1MiB"
	nd, err := build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	client, err := netserve.Dial(nd.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 256<<20, 2, 32, 64<<10, netserve.FlagWrite); err != nil {
		t.Fatalf("write streams: %v", err)
	}
	nd.ingest.Flush()
	if nd.ingest.Stats().Writes != 64 {
		t.Errorf("ingest writes = %d", nd.ingest.Stats().Writes)
	}
}

func TestBuildBadParams(t *testing.T) {
	cases := []func(*buildParams){
		func(p *buildParams) { p.capacity = "bogus" },
		func(p *buildParams) { p.memory = "bogus" },
		func(p *buildParams) { p.ra = "bogus" },
		func(p *buildParams) { p.disks = 0 },
		func(p *buildParams) { p.ingest = true; p.chunk = "bogus" },
		func(p *buildParams) { p.files = "/nonexistent/nope.img" },
		func(p *buildParams) { p.listen = "256.256.256.256:1" },
		func(p *buildParams) { p.fault = "mode=nonsense" },
		func(p *buildParams) { p.fetchTimeout = -time.Second },
	}
	for i, mutate := range cases {
		p := testParams()
		mutate(&p)
		nd, err := build(p)
		if err == nil {
			nd.Close()
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

func TestBuildWithFaultScript(t *testing.T) {
	p := testParams()
	// Every third read-ahead fetch fails transiently; the retry knobs
	// must absorb the faults with no client-visible error.
	p.fault = "minlen=1048576,mode=err,every=3"
	p.fetchRetries = 3
	p.retryBackoff = time.Millisecond
	p.fetchTimeout = 5 * time.Second
	p.breakerThreshold = 50
	p.idleTimeout = time.Minute
	p.writeTimeout = time.Minute
	nd, err := build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	client, err := netserve.Dial(nd.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 256<<20, 4, 32, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams through fault script: %v", err)
	}
	if got := nd.core.Stats().FetchRetries; got == 0 {
		t.Error("fault script injected no retried faults")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
