// Command streamnode runs a storage node: the paper's host-level
// stream scheduler serving reads over TCP from an in-memory or
// file-backed device.
//
// Usage:
//
//	streamnode -listen 127.0.0.1:7070 -disks 2 -capacity 4GiB
//	streamnode -listen 127.0.0.1:7070 -files disk0.img,disk1.img
//	streamnode -debug-addr 127.0.0.1:7071   # /metrics, /debug/vars, /debug/pprof
//	streamnode -fault 'disk=0,mode=err,every=5' -fetch-retries 3   # fault drill
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seqstream/internal/blackbox"
	"seqstream/internal/blockdev"
	"seqstream/internal/controller"
	"seqstream/internal/core"
	"seqstream/internal/flight"
	"seqstream/internal/health"
	"seqstream/internal/netserve"
	"seqstream/internal/obs"
	"seqstream/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// node bundles the built server stack for run and for tests.
type node struct {
	srv      *netserve.Server
	core     *core.Server
	ingest   *core.Ingest
	reg      *obs.Registry
	spans    *obs.SpanLog
	flight   *flight.Recorder
	health   *health.Engine
	blackbox *blackbox.Capturer
	debug    *obs.DebugServer
	closers  []func()
}

func (n *node) Close() {
	if n.debug != nil {
		n.debug.Close()
	}
	if n.health != nil {
		n.health.Close()
	}
	n.srv.Close()
	if n.ingest != nil {
		n.ingest.Close()
	}
	n.core.Close()
	// Close the span log after core.Close so the scheduler's shutdown
	// flush has already drained; entries recorded up to the last
	// request reach the sink instead of dying with the process.
	if n.spans != nil {
		n.spans.Close()
	}
	for _, c := range n.closers {
		c()
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streamnode", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7070", "listen address")
		disks     = fs.Int("disks", 1, "number of in-memory disks (ignored with -files)")
		capacity  = fs.String("capacity", "4GiB", "per-disk capacity for in-memory disks")
		latency   = fs.Duration("latency", 5*time.Millisecond, "simulated per-read latency for in-memory disks")
		files     = fs.String("files", "", "comma-separated file paths to serve instead of memory disks")
		memory    = fs.String("memory", "256MiB", "staging memory (M)")
		ra        = fs.String("readahead", "1MiB", "read-ahead per disk request (R)")
		n         = fs.Int("requests-per-stream", 1, "disk requests per dispatch residency (N)")
		d         = fs.Int("dispatch", 0, "dispatch set size (D); 0 derives M/(R*N)")
		shards    = fs.Int("shards", 0, "scheduler shard count; 0 (the default) is one shard per disk")
		ingest    = fs.Bool("ingest", false, "accept FlagWrite requests through the write-once coalescer")
		chunk     = fs.String("chunk", "1MiB", "ingest chunk size (with -ingest)")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof, and /debug/flight on this address (empty disables)")
		statsIvl  = fs.Duration("stats-interval", 0, "log a one-line metric summary this often (0 disables)")

		flightEvents = fs.Int("flight-events", 0, "per-shard flight-recorder ring capacity in events, rounded up to a power of two (0 uses the default, 4096)")
		healthIvl    = fs.Duration("health-interval", time.Second, "how often the online health engine polls the flight rings (0 disables the engine)")
		healthWin    = fs.Duration("health-window", time.Minute, "sliding-window span for the latency telemetry behind /debug/health (0 disables windows and the engine)")
		spanLogPath  = fs.String("span-log", "", "append lifecycle span JSON lines to this file (flushed on shutdown)")

		sloTarget     = fs.Duration("slo-target", 0, "per-delivery deadline base for the stream SLO engine (0 disables SLO scoring)")
		sloLateFactor = fs.Float64("slo-late-factor", 0, "lateness multiple of the deadline that escalates late to missed (0 uses the default, 4)")
		sloObjective  = fs.Float64("slo-objective", 0, "on-time delivery objective the burn-rate alerts budget against, e.g. 0.999 (0 uses the default)")
		sloFastWin    = fs.Duration("slo-fast-window", 0, "fast burn-rate window (0 uses the default, 5m)")
		sloMidWin     = fs.Duration("slo-mid-window", 0, "mid burn-rate window confirming the fast one (0 uses the default, 1h)")
		sloSlowWin    = fs.Duration("slo-slow-window", 0, "slow burn-rate window (0 uses the default, 6h)")
		sloMinSamples = fs.Int64("slo-min-samples", 0, "deliveries a window needs before its burn rate can alert (0 uses the default, 32)")
		blackboxDir   = fs.String("blackbox-dir", "", "persist anomaly-triggered diagnostic bundles to this directory (empty keeps them in memory only, served at /debug/bundle)")

		fault        = fs.String("fault", "", "fault-injection script, rules separated by ';' (e.g. 'disk=0,mode=err,every=5;mode=delay,delay=50ms')")
		fetchTimeout = fs.Duration("fetch-timeout", 0, "fail a stream fetch stuck on the device this long (0 disables)")
		fetchRetries = fs.Int("fetch-retries", 0, "retries for transiently failed fetches (0 disables)")
		retryBackoff = fs.Duration("retry-backoff", 0, "initial fetch-retry backoff, doubled per attempt (0 uses the default)")
		brkThresh    = fs.Int("breaker-threshold", 0, "consecutive device failures that open a disk's circuit breaker (0 disables)")
		brkCooldown  = fs.Duration("breaker-cooldown", 0, "how long an open breaker waits before probing the disk again (0 uses the default)")
		idleTimeout  = fs.Duration("idle-timeout", 0, "close client connections idle this long (0 disables)")
		writeTimeout = fs.Duration("write-timeout", 0, "per-response write deadline to clients (0 disables)")
		payload      = fs.Bool("payload", false, "grant the v2 payload extension: clients that negotiate it get read responses carrying the staged bytes")

		replicas       = fs.Int("replicas", 0, "replication factor of the data layout: each disk's regions are also readable from replicas-1 mirror disks (0/1 disables)")
		steerFactor    = fs.Float64("steer-factor", 0, "steer a stream's fetches to a replica whose fetch EWMA is this many times faster than the primary's (0 disables; needs -replicas >= 2 and -health-window > 0)")
		specQuantile   = fs.Float64("spec-quantile", 0, "re-issue a fetch on a replica once it outlives this latency quantile of its disk's window, e.g. 0.95 (0 disables; needs -replicas >= 2 and -health-window > 0)")
		specMinSamples = fs.Int("spec-min-samples", 0, "window samples a disk needs before its fetches are eligible for speculation (0 uses the default, 8)")
		specMinDelay   = fs.Duration("spec-min-delay", 0, "floor for the speculation trigger delay (0 uses the default, 1ms)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	nd, err := build(buildParams{
		listen: *listen, disks: *disks, capacity: *capacity, latency: *latency,
		files: *files, memory: *memory, ra: *ra, n: *n, d: *d, shards: *shards,
		ingest: *ingest, chunk: *chunk, debugAddr: *debugAddr,
		flightEvents: *flightEvents, spanLogPath: *spanLogPath,
		healthInterval: *healthIvl, healthWindow: *healthWin,
		sloTarget: *sloTarget, sloLateFactor: *sloLateFactor, sloObjective: *sloObjective,
		sloFastWindow: *sloFastWin, sloMidWindow: *sloMidWin, sloSlowWindow: *sloSlowWin,
		sloMinSamples: *sloMinSamples, blackboxDir: *blackboxDir,
		fault:        *fault,
		fetchTimeout: *fetchTimeout, fetchRetries: *fetchRetries, retryBackoff: *retryBackoff,
		breakerThreshold: *brkThresh, breakerCooldown: *brkCooldown,
		idleTimeout: *idleTimeout, writeTimeout: *writeTimeout, payload: *payload,
		replicas: *replicas, steerFactor: *steerFactor, specQuantile: *specQuantile,
		specMinSamples: *specMinSamples, specMinDelay: *specMinDelay,
	})
	if err != nil {
		return err
	}
	defer nd.Close()

	cfg := nd.core.Config()
	fmt.Printf("streamnode listening on %s (D=%d R=%d N=%d M=%d ingest=%v payload=%v)\n",
		nd.srv.Addr(), cfg.DispatchSize, cfg.ReadAhead, cfg.RequestsPerStream, cfg.Memory, nd.ingest != nil, *payload)
	if nd.debug != nil {
		fmt.Printf("debug endpoints on http://%s/ (metrics, vars, pprof)\n", nd.debug.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *statsIvl > 0 {
		ticker := time.NewTicker(*statsIvl)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Println(statsLine(nd))
			}
		}()
	}

	<-sig
	st := nd.core.Stats()
	fmt.Printf("shutting down: requests=%d streams=%d fetched=%dMB delivered=%dMB hits=%d\n",
		st.Requests, st.StreamsDetected, st.BytesFetched>>20, st.BytesDelivered>>20,
		st.BufferHits+st.QueuedServed)
	return nil
}

// statsLine formats the periodic -stats-interval summary from one
// consistent scheduler snapshot plus the wire-level counters.
func statsLine(nd *node) string {
	snap := nd.core.Snapshot()
	ns := nd.srv.Stats()
	return fmt.Sprintf(
		"stats: requests=%d hits=%d direct=%d streams=%d/%d dispatched=%d queue=%d mem=%dMiB conns=%d errors=%d",
		snap.Stats.Requests, snap.Stats.BufferHits+snap.Stats.QueuedServed,
		snap.Stats.DirectReads, snap.ActiveStreams, snap.Stats.StreamsDetected,
		snap.DispatchedStreams, snap.CandidateQueue, snap.Stats.MemoryInUse>>20,
		ns.Conns, ns.Errors)
}

// extraHandlers mounts the flight snapshot dump and, when the engine
// runs, the /debug/health rollup and /debug/bundle blackbox ring on
// the debug mux.
func extraHandlers(rec *flight.Recorder, eng *health.Engine, capt *blackbox.Capturer) map[string]http.Handler {
	m := map[string]http.Handler{
		"/debug/flight": flight.Handler(rec),
	}
	if eng != nil {
		m["/debug/health"] = health.Handler(eng)
	}
	if capt != nil {
		m["/debug/bundle"] = blackbox.Handler(capt)
	}
	return m
}

// captureTrigger adapts the blackbox capturer to health.Capturer,
// dropping the returned bundle (the engine only fires triggers; the
// ring and /debug/bundle are where bundles are read).
type captureTrigger struct{ c *blackbox.Capturer }

func (t captureTrigger) Capture(reason string) { t.c.Capture(reason) }

// buildParams carries the parsed flags.
type buildParams struct {
	listen    string
	disks     int
	capacity  string
	latency   time.Duration
	files     string
	memory    string
	ra        string
	n         int
	d         int
	shards    int
	ingest    bool
	chunk     string
	debugAddr string

	// Flight recorder and span-log sink.
	flightEvents int
	spanLogPath  string

	// Online health engine: poll period and sliding-window span.
	healthInterval time.Duration
	healthWindow   time.Duration

	// Stream SLO engine and the anomaly-triggered blackbox capturer.
	sloTarget     time.Duration
	sloLateFactor float64
	sloObjective  float64
	sloFastWindow time.Duration
	sloMidWindow  time.Duration
	sloSlowWindow time.Duration
	sloMinSamples int64
	blackboxDir   string

	// Failure handling: fault-injection script plus the fetch-timeout,
	// retry, breaker, and connection-deadline knobs.
	fault            string
	fetchTimeout     time.Duration
	fetchRetries     int
	retryBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	idleTimeout      time.Duration
	writeTimeout     time.Duration
	payload          bool

	// Replica-aware dispatch: mirrored layout, straggler steering, and
	// speculative re-issue.
	replicas       int
	steerFactor    float64
	specQuantile   float64
	specMinSamples int
	specMinDelay   time.Duration
}

// build assembles the device, scheduler, optional ingest, the TCP
// server, and (with debugAddr) the instrumented debug listener.
func build(p buildParams) (*node, error) {
	out := &node{}
	var dev blockdev.Device
	if p.files != "" {
		fd, err := blockdev.OpenFileDevice(strings.Split(p.files, ","), 0)
		if err != nil {
			return nil, err
		}
		out.closers = append(out.closers, func() { fd.Close() })
		dev = fd
	} else {
		capBytes, err := units.ParseSize(p.capacity)
		if err != nil {
			return nil, err
		}
		md, err := blockdev.NewMemDevice(p.disks, capBytes, p.latency, true)
		if err != nil {
			return nil, err
		}
		dev = md
	}

	mem, err := units.ParseSize(p.memory)
	if err != nil {
		return nil, err
	}
	raBytes, err := units.ParseSize(p.ra)
	if err != nil {
		return nil, err
	}
	clock := blockdev.NewRealClock()

	if p.fault != "" {
		rules, err := blockdev.ParseFaultScript(p.fault)
		if err != nil {
			return nil, err
		}
		sdev, err := blockdev.NewScriptDevice(dev, clock, rules)
		if err != nil {
			return nil, err
		}
		dev = sdev
	}

	// One registry feeds every layer. The controller families are
	// registered too so real-device and simulated nodes expose the same
	// metric vocabulary; here they read zero (no simulated controller).
	out.reg = obs.NewRegistry()
	controller.NewObs(out.reg)
	obs.RegisterRuntimeMetrics(out.reg)
	spans, err := obs.NewSpanLog(clock.Now, 4096)
	if err != nil {
		return nil, err
	}
	out.spans = spans
	if p.spanLogPath != "" {
		f, err := os.OpenFile(p.spanLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		spans.SetSink(f)
		out.closers = append(out.closers, func() { f.Close() })
	}

	cfg := core.Config{
		DispatchSize:      p.d,
		Shards:            p.shards,
		ReadAhead:         raBytes,
		RequestsPerStream: p.n,
		Memory:            mem,
		Obs:               core.NewObs(out.reg, spans),
		FetchTimeout:      p.fetchTimeout,
		FetchRetries:      p.fetchRetries,
		RetryBackoff:      p.retryBackoff,
		BreakerThreshold:  p.breakerThreshold,
		BreakerCooldown:   p.breakerCooldown,
		WindowSpan:        p.healthWindow,
		SLOTarget:         p.sloTarget,
		SLOLateFactor:     p.sloLateFactor,
		SLOObjective:      p.sloObjective,
		SLOFastWindow:     p.sloFastWindow,
		SLOMidWindow:      p.sloMidWindow,
		SLOSlowWindow:     p.sloSlowWindow,
		SLOMinSamples:     p.sloMinSamples,
		Replicas:          p.replicas,
		SteerFactor:       p.steerFactor,
		SpecQuantile:      p.specQuantile,
		SpecMinSamples:    p.specMinSamples,
		SpecMinDelay:      p.specMinDelay,
	}
	cfg.ApplyDefaults()

	// The flight recorder is always on: one ring per scheduler shard
	// (mirroring the server's disk→shard routing), fixed memory,
	// lock-free writes. It must exist before the server so each shard
	// binds its ring at construction.
	shards := cfg.Shards
	if shards <= 0 || shards > dev.Disks() {
		shards = dev.Disks()
	}
	rec, err := flight.New(clock.Now, shards, p.flightEvents)
	if err != nil {
		return nil, err
	}
	out.flight = rec
	cfg.Flight = rec
	// Memory devices stamp device-read completions onto the same rings;
	// file-backed and fault-wrapped devices have no completion hook.
	if fd, ok := dev.(interface{ SetFlight(*flight.Recorder) }); ok {
		fd.SetFlight(rec)
	}

	coreSrv, err := core.NewServer(dev, clock, cfg)
	if err != nil {
		return nil, err
	}
	out.core = coreSrv

	srv, err := netserve.NewServerOpts(coreSrv, p.listen, netserve.ServerOptions{
		IdleTimeout:  p.idleTimeout,
		WriteTimeout: p.writeTimeout,
		Payload:      p.payload,
	})
	if err != nil {
		coreSrv.Close()
		return nil, err
	}
	nsObs := netserve.NewObs(out.reg)
	if p.healthWindow > 0 {
		if err := nsObs.AttachWindow(out.reg, clock.Now, p.healthWindow); err != nil {
			coreSrv.Close()
			srv.Close()
			return nil, err
		}
	}
	if ledger := coreSrv.SLO(); ledger != nil {
		// Score the wire too: the client-observed counters should track
		// the scheduler-side ledger; divergence localizes lost time.
		nsObs.AttachSLO(out.reg, ledger.Deadline)
	}
	srv.SetObs(nsObs)
	srv.SetFlight(rec)
	out.srv = srv

	// The health engine tails the shard rings the recorder already
	// carries; windows disabled (healthWindow 0) also disables it, since
	// the rollup's latency half would be empty.
	if p.healthInterval > 0 && p.healthWindow > 0 {
		eng, err := health.NewEngine(rec, coreSrv, clock, health.Config{
			Interval: p.healthInterval,
			Window:   p.healthWindow,
		})
		if err != nil {
			out.Close()
			return nil, err
		}
		if ledger := coreSrv.SLO(); ledger != nil {
			eng.SetSLO(ledger)
		}
		// The blackbox capturer rides the engine: every anomaly raise or
		// burn-rate trip snapshots the node's diagnostic state into a
		// bundle (in memory, and on disk with -blackbox-dir). Wall time
		// comes from the real clock — this binary has one; simulations
		// leave Wall nil.
		capt, err := blackbox.New(blackbox.Config{
			Dir:      p.blackboxDir,
			Profiles: true,
		}, clock.Now, blackbox.Sources{
			Flight:   rec,
			Spans:    spans,
			SLO:      coreSrv.SLO(),
			Health:   func() any { return eng.Report() },
			Breakers: func() any { return coreSrv.BreakerInfos() },
			Stats:    func() any { return coreSrv.Snapshot() },
			Config:   cfg,
			Wall:     func() string { return time.Now().UTC().Format(time.RFC3339Nano) },
		})
		if err != nil {
			out.Close()
			return nil, err
		}
		eng.SetCapturer(captureTrigger{capt})
		out.blackbox = capt
		eng.Start()
		out.health = eng
	}

	if p.ingest {
		chunkBytes, err := units.ParseSize(p.chunk)
		if err != nil {
			out.Close()
			return nil, err
		}
		ing, err := core.NewIngest(dev, clock, core.IngestConfig{
			ChunkSize: chunkBytes,
			Memory:    mem,
			// Share the read path's staging pool (nil on simulated
			// devices) so chunk buffers recycle instead of allocating.
			Pool: coreSrv.Pool(),
		})
		if err != nil {
			out.Close()
			return nil, err
		}
		out.ingest = ing
		srv.EnableWrites(ing)
	}

	if p.debugAddr != "" {
		handler := obs.HandlerExtra(out.reg, map[string]obs.VarFunc{
			"core":     func() any { return out.core.Snapshot() },
			"netserve": func() any { return out.srv.Stats() },
			"config":   func() any { return out.core.Config() },
			"spans":    func() any { return spans.Snapshot() },
		}, extraHandlers(rec, out.health, out.blackbox))
		dbg, err := obs.Serve(p.debugAddr, handler)
		if err != nil {
			out.Close()
			return nil, err
		}
		out.debug = dbg
	}
	return out, nil
}
