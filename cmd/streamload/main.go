// Command streamload emulates the paper's client machines: it drives
// many synchronous sequential streams against a streamnode over TCP
// and reports per-stream and aggregate throughput plus response times.
//
// Usage:
//
//	streamload -addr 127.0.0.1:7070 -streams 100 -requests 256 -reqsize 64KiB
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/health"
	"seqstream/internal/netserve"
	"seqstream/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streamload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7070", "storage node address")
		disk     = fs.Int("disk", 0, "target disk id")
		capacity = fs.String("capacity", "4GiB", "target disk capacity (stream placement span)")
		streams  = fs.Int("streams", 10, "number of sequential streams")
		requests = fs.Int("requests", 128, "requests per stream")
		reqSize  = fs.String("reqsize", "64KiB", "request size")
		wantData = fs.Bool("data", false, "request payloads (off to mirror the paper's setup)")
		payload  = fs.Bool("payload", false, "negotiate the v2 payload extension (implies -data); fails if the node does not grant it")
		verify   = fs.Bool("verify", false, "check every returned byte against the node's deterministic memdisk pattern (needs -payload)")
		writes   = fs.Bool("write", false, "issue write streams instead of reads (node must run -ingest)")
		perOut   = fs.Bool("per-stream", false, "print per-stream statistics")

		healthAddr = fs.String("health-addr", "", "storage node debug address (host:port); after the run, fetch /debug/health and print windowed per-disk latency plus anomaly counts (empty disables)")

		sloRatio  = fs.Float64("slo", 0, "fail the run (exit 1) unless at least this fraction of requests finished within -slo-target, e.g. 0.99 (0 disables)")
		sloTarget = fs.Duration("slo-target", 50*time.Millisecond, "client-side response-time deadline the -slo ratio is scored against")

		traced      = fs.Bool("trace", false, "stamp every request with a client-generated trace id (follow them in the node's /debug/flight)")
		timeout     = fs.Duration("timeout", 0, "per-request deadline; timed-out requests fail the run (0 waits forever)")
		dialRetries = fs.Int("dial-retries", 1, "dial attempts before giving up")
		dialBackoff = fs.Duration("dial-backoff", 50*time.Millisecond, "initial backoff between dial attempts, doubled and jittered per retry")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	capBytes, err := units.ParseSize(*capacity)
	if err != nil {
		return err
	}
	rs, err := units.ParseSize(*reqSize)
	if err != nil {
		return err
	}

	if *verify && !*payload {
		return fmt.Errorf("streamload: -verify needs -payload (the offset echo it checks only exists on v2 payload frames)")
	}

	client, err := netserve.DialRetry(*addr, netserve.ClientOptions{
		RequestTimeout: *timeout,
		Tracing:        *traced,
		Payload:        *payload,
	}, *dialRetries, *dialBackoff)
	if err != nil {
		return err
	}
	defer client.Close()
	if *payload && !client.Payload() {
		return fmt.Errorf("streamload: node at %s did not grant the payload extension (run it with -payload)", *addr)
	}

	var flags uint16
	if *wantData || *payload {
		flags = netserve.FlagWantData
	}
	if *writes {
		flags |= netserve.FlagWrite
	}

	// The verify check catches offset/length framing bugs end to end:
	// the node's in-memory disks serve a deterministic pattern, and
	// every v2 payload frame echoes the offset the server staged, so a
	// mismatch pins the failure to the wire path rather than client
	// bookkeeping.
	var check func(stream int, resp *netserve.Response) error
	if *verify {
		check = func(stream int, resp *netserve.Response) error {
			if resp.Flags&netserve.RespPayload == 0 {
				return fmt.Errorf("streamload: verify: stream %d: response carries no payload framing", stream)
			}
			if int64(len(resp.Data)) != rs {
				return fmt.Errorf("streamload: verify: stream %d offset %d: got %d bytes, want %d",
					stream, resp.Offset, len(resp.Data), rs)
			}
			for i, got := range resp.Data {
				if want := blockdev.Pattern(*disk, resp.Offset+int64(i)); got != want {
					return fmt.Errorf("streamload: verify: stream %d offset %d byte %d: got %#x, want %#x",
						stream, resp.Offset, i, got, want)
				}
			}
			return nil
		}
	}

	started := time.Now()
	if err := client.RunStreamsFunc(uint16(*disk), capBytes, *streams, *requests, rs, flags, check); err != nil {
		return err
	}
	elapsed := time.Since(started)
	if *verify {
		fmt.Printf("verify: all %d responses matched the device pattern\n", *streams**requests)
	}

	rec := client.Recorder()
	lat := rec.MergedLatency()
	fmt.Printf("streams=%d requests=%d bytes=%dMB wall=%v\n",
		rec.Streams(), rec.TotalRequests(), rec.TotalBytes()>>20, elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate=%.1f MB/s wall=%.1f MB/s\n", rec.AggregateMBps(), rec.WallThroughput()/1e6)
	fmt.Printf("latency mean=%v p50=%v p99=%v max=%v\n",
		lat.Mean().Round(time.Microsecond), lat.Quantile(0.5).Round(time.Microsecond),
		lat.Quantile(0.99).Round(time.Microsecond), lat.Max().Round(time.Microsecond))
	if *perOut {
		for _, id := range rec.StreamIDs() {
			s := rec.Stream(id)
			fmt.Printf("  stream %3d: %.2f MB/s mean=%v\n",
				id, s.Throughput()/1e6, s.Latency.Mean().Round(time.Microsecond))
		}
	}
	if *healthAddr != "" {
		if err := printHealth(os.Stdout, *healthAddr); err != nil {
			return fmt.Errorf("health summary: %w", err)
		}
	}
	if *sloRatio > 0 {
		if *sloRatio > 1 {
			return fmt.Errorf("streamload: -slo %g is not a ratio in (0, 1]", *sloRatio)
		}
		onTime := lat.FractionUnder(*sloTarget)
		fmt.Printf("slo: on-time=%.4f objective=%.4f target=%v samples=%d\n",
			onTime, *sloRatio, *sloTarget, lat.Count())
		if onTime < *sloRatio {
			return fmt.Errorf("streamload: SLO violated: on-time ratio %.4f below objective %.4f (deadline %v)",
				onTime, *sloRatio, *sloTarget)
		}
	}
	return nil
}

// printHealth fetches the node's /debug/health rollup and prints the
// end-of-run summary: node verdict, windowed per-disk fetch latency,
// and active anomaly counts by kind.
func printHealth(w io.Writer, addr string) error {
	resp, err := http.Get("http://" + addr + "/debug/health")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/health: status %d", resp.StatusCode)
	}
	var rep health.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "health: verdict=%s anomalies=%d events=%d lost=%d\n",
		rep.Verdict, len(rep.Anomalies), rep.EventsSeen, rep.EventsLost)
	fmt.Fprintf(w, "  request window: p50=%v p99=%v (%d samples)\n",
		rep.Request.P50.Round(time.Microsecond), rep.Request.P99.Round(time.Microsecond), rep.Request.Count)
	for _, d := range rep.Disks {
		fmt.Fprintf(w, "  disk %d [shard %d] %s: fetch p50=%v p99=%v ewma=%v",
			d.Disk, d.Shard, d.Verdict,
			d.Fetch.P50.Round(time.Microsecond), d.Fetch.P99.Round(time.Microsecond),
			d.EWMA.Round(time.Microsecond))
		if d.Breaker != "" {
			fmt.Fprintf(w, " breaker=%s", d.Breaker)
		}
		fmt.Fprintln(w)
	}
	counts := map[string]int{}
	for _, a := range rep.Anomalies {
		counts[a.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  anomaly[%s] x%d\n", k, counts[k])
	}
	return nil
}
