package main

import (
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/netserve"
)

func startNode(t *testing.T) *netserve.Server {
	t.Helper()
	dev, err := blockdev.NewMemDevice(1, 1<<30, 200*time.Microsecond, false)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewServer(dev, blockdev.NewRealClock(), core.DefaultConfig(32<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	ing, err := core.NewIngest(dev, blockdev.NewRealClock(), core.IngestConfig{
		ChunkSize: 1 << 20, Memory: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	srv, err := netserve.NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableWrites(ing)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestRunReadLoad(t *testing.T) {
	srv := startNode(t)
	err := run([]string{
		"-addr", srv.Addr(), "-streams", "4", "-requests", "16",
		"-capacity", "1GiB", "-reqsize", "64KiB", "-per-stream",
		"-timeout", "30s", "-dial-retries", "3", "-dial-backoff", "10ms",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if srv.Stats().Requests != 64 {
		t.Errorf("server requests = %d", srv.Stats().Requests)
	}
}

func TestRunWriteLoad(t *testing.T) {
	srv := startNode(t)
	err := run([]string{
		"-addr", srv.Addr(), "-streams", "2", "-requests", "8",
		"-capacity", "1GiB", "-write",
	})
	if err != nil {
		t.Fatalf("run -write: %v", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run([]string{"-reqsize", "bogus"}); err == nil {
		t.Error("bad reqsize accepted")
	}
	if err := run([]string{"-capacity", "bogus"}); err == nil {
		t.Error("bad capacity accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1"}); err == nil {
		t.Error("dead address accepted")
	}
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}
