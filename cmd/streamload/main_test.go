package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/flight"
	"seqstream/internal/health"
	"seqstream/internal/netserve"
)

func startNode(t *testing.T) *netserve.Server {
	t.Helper()
	dev, err := blockdev.NewMemDevice(1, 1<<30, 200*time.Microsecond, false)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewServer(dev, blockdev.NewRealClock(), core.DefaultConfig(32<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	ing, err := core.NewIngest(dev, blockdev.NewRealClock(), core.IngestConfig{
		ChunkSize: 1 << 20, Memory: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	srv, err := netserve.NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableWrites(ing)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestRunReadLoad(t *testing.T) {
	srv := startNode(t)
	err := run([]string{
		"-addr", srv.Addr(), "-streams", "4", "-requests", "16",
		"-capacity", "1GiB", "-reqsize", "64KiB", "-per-stream",
		"-timeout", "30s", "-dial-retries", "3", "-dial-backoff", "10ms",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if srv.Stats().Requests != 64 {
		t.Errorf("server requests = %d", srv.Stats().Requests)
	}
}

// TestRunTracedLoad drives a -trace run against a node with a flight
// recorder attached: the client-stamped trace ids must surface in the
// recorder's timeline.
func TestRunTracedLoad(t *testing.T) {
	srv := startNode(t)
	rec, err := flight.New(blockdev.NewRealClock().Now, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFlight(rec)
	err = run([]string{
		"-addr", srv.Addr(), "-streams", "2", "-requests", "8",
		"-capacity", "1GiB", "-trace",
	})
	if err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	traced := 0
	for _, ev := range rec.Snapshot().Merged() {
		if ev.Trace != 0 {
			traced++
		}
	}
	if traced == 0 {
		t.Error("no flight events carry a trace id after a -trace run")
	}
}

func TestRunWriteLoad(t *testing.T) {
	srv := startNode(t)
	err := run([]string{
		"-addr", srv.Addr(), "-streams", "2", "-requests", "8",
		"-capacity", "1GiB", "-write",
	})
	if err != nil {
		t.Fatalf("run -write: %v", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run([]string{"-reqsize", "bogus"}); err == nil {
		t.Error("bad reqsize accepted")
	}
	if err := run([]string{"-capacity", "bogus"}); err == nil {
		t.Error("bad capacity accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1"}); err == nil {
		t.Error("dead address accepted")
	}
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunWithHealthSummary drives a load run with -health-addr pointed
// at a /debug/health endpoint and checks printHealth's rendering of
// the rollup.
func TestRunWithHealthSummary(t *testing.T) {
	srv := startNode(t)

	// A health engine over a synthetic breaker flap stands in for the
	// node's debug listener.
	clk := blockdev.NewRealClock()
	rec, err := flight.New(clk.Now, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := health.NewEngine(rec, nil, clk, health.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rec.Ring(0).Record(flight.Event{Op: flight.OpBreakerOpen, Disk: 0})
	rec.Ring(0).Record(flight.Event{Op: flight.OpBreakerOpen, Disk: 0})
	eng.Tick()
	ts := httptest.NewServer(health.Handler(eng))
	defer ts.Close()
	healthAddr := strings.TrimPrefix(ts.URL, "http://")

	err = run([]string{
		"-addr", srv.Addr(), "-streams", "2", "-requests", "8",
		"-capacity", "1GiB", "-health-addr", healthAddr,
	})
	if err != nil {
		t.Fatalf("run -health-addr: %v", err)
	}

	var b strings.Builder
	if err := printHealth(&b, healthAddr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"health: verdict=degraded anomalies=1",
		"disk 0 [shard 0] degraded",
		"anomaly[breaker-flap] x1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// A dead endpoint fails the summary, not silently.
	if err := printHealth(&b, "127.0.0.1:1"); err == nil {
		t.Error("dead health endpoint accepted")
	}
}
