package main

import (
	"testing"
	"time"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-arg run should fail with usage error")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunOneFigureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	err := run([]string{"-fig", "fig06", "-warmup", "500ms", "-measure", "1s"})
	if err != nil {
		t.Fatalf("run fig06: %v", err)
	}
	_ = time.Second
}
