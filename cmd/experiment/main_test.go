package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-arg run should fail with usage error")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunOneFigureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	err := run([]string{"-fig", "fig06", "-warmup", "500ms", "-measure", "1s"})
	if err != nil {
		t.Fatalf("run fig06: %v", err)
	}
	_ = time.Second
}

func TestRunWritesMetricsSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	dir := t.TempDir()
	err := run([]string{"-fig", "fig10", "-warmup", "500ms", "-measure", "1s", "-metrics", dir})
	if err != nil {
		t.Fatalf("run fig10: %v", err)
	}
	body, err := os.ReadFile(filepath.Join(dir, "fig10.prom"))
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	out := string(body)
	for _, family := range []string{
		"seqstream_core_requests_total",
		"seqstream_controller_requests_total",
		"seqstream_sim_processed_events_total",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("snapshot missing %q", family)
		}
	}
}
