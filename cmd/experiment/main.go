// Command experiment regenerates the paper's figures on the simulated
// I/O hierarchy and prints the series as text tables. It also hosts
// the host-path benchmark (-bench-json), which measures the real
// scheduler — not the simulation — against an in-memory device.
//
// Usage:
//
//	experiment -list
//	experiment -fig fig10
//	experiment -all -quick
//	experiment -bench-json BENCH_core.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"seqstream/internal/bench"
	"seqstream/internal/experiments"
	"seqstream/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "", "experiment id to run (e.g. fig10); see -list")
		all     = fs.Bool("all", false, "run every registered experiment")
		list    = fs.Bool("list", false, "list registered experiments")
		quick   = fs.Bool("quick", false, "short measurement windows (noisier, much faster)")
		warmup  = fs.Duration("warmup", 0, "override warmup window")
		measure = fs.Duration("measure", 0, "override measurement window")
		seed    = fs.Uint64("seed", 1, "simulation seed")
		csvDir  = fs.String("csv", "", "also write <dir>/<id>.csv per experiment")
		metrics = fs.String("metrics", "", "emit a Prometheus-text registry snapshot per experiment: '-' for stdout, else <dir>/<id>.prom")

		benchJSON     = fs.String("bench-json", "", "run the host-path core benchmark (sharded vs single-lock) and write the report to this path")
		benchDisks    = fs.Int("bench-disks", 64, "bench: number of in-memory disks")
		benchStreams  = fs.Int("bench-streams", 512, "bench: concurrent sequential streams")
		benchRequests = fs.Int("bench-requests", 200, "bench: requests per stream")

		benchFlight = fs.String("bench-flight", "", "run the flight-recorder overhead benchmark (recording off vs on) and write the report to this path")
		budget      = fs.Float64("flight-budget", bench.DefaultFlightBudget, "bench-flight: acceptable req/s overhead fraction; exceeding it fails the run")

		benchHealth  = fs.String("bench-health", "", "run the health-engine overhead benchmark (windows+engine off vs on, recorder on in both) and write the report to this path")
		healthBudget = fs.Float64("health-budget", bench.DefaultHealthBudget, "bench-health: acceptable req/s overhead fraction; exceeding it fails the run")

		benchSpec  = fs.String("bench-spec", "", "run the speculation benchmark (replicas+steering+speculation off vs on, healthy and with one straggling disk) and write the report to this path")
		specBudget = fs.Float64("spec-budget", bench.DefaultSpecBudget, "bench-spec: acceptable healthy req/s overhead fraction; exceeding it fails the run")

		benchPayload  = fs.String("bench-payload", "", "run the bytes-on-the-wire benchmark (data-less unbatched vs batched reaping vs verified payload delivery over loopback TCP) and write the report to this path")
		payloadBudget = fs.Float64("payload-budget", bench.DefaultPayloadBudget, "bench-payload: acceptable data-less req/s overhead fraction; exceeding it fails the run")

		benchSLO  = fs.String("bench-slo", "", "run the SLO-engine overhead benchmark (deadline scoring + burn windows off vs on, flight + health on in both) and write the report to this path")
		sloBudget = fs.Float64("slo-budget", bench.DefaultSLOBudget, "bench-slo: acceptable req/s overhead fraction; exceeding it fails the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchFlight != "" {
		rep, err := bench.RunFlightComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *budget)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if err := rep.WriteJSON(*benchFlight); err != nil {
			return err
		}
		if !rep.WithinBudget {
			return fmt.Errorf("flight recorder overhead %.2f%% exceeds budget %.1f%%",
				rep.OverheadFrac*100, rep.Budget*100)
		}
		return nil
	}

	if *benchHealth != "" {
		rep, err := bench.RunHealthComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *healthBudget)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if err := rep.WriteJSON(*benchHealth); err != nil {
			return err
		}
		if !rep.WithinBudget {
			return fmt.Errorf("health engine overhead %.2f%% exceeds budget %.1f%%",
				rep.OverheadFrac*100, rep.Budget*100)
		}
		return nil
	}

	if *benchSpec != "" {
		rep, err := bench.RunSpeculationComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *specBudget)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if err := rep.WriteJSON(*benchSpec); err != nil {
			return err
		}
		if !rep.WithinBudget {
			return fmt.Errorf("speculation healthy overhead %.2f%% exceeds budget %.1f%%",
				rep.OverheadFrac*100, rep.Budget*100)
		}
		return nil
	}

	if *benchPayload != "" {
		rep, err := bench.RunPayloadComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *payloadBudget)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if err := rep.WriteJSON(*benchPayload); err != nil {
			return err
		}
		if !rep.WithinBudget {
			return fmt.Errorf("payload path data-less overhead %.2f%% exceeds budget %.1f%%",
				rep.OverheadFrac*100, rep.Budget*100)
		}
		return nil
	}

	if *benchSLO != "" {
		rep, err := bench.RunSLOComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *sloBudget)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if err := rep.WriteJSON(*benchSLO); err != nil {
			return err
		}
		if !rep.WithinBudget {
			return fmt.Errorf("slo engine overhead %.2f%% exceeds budget %.1f%%",
				rep.OverheadFrac*100, rep.Budget*100)
		}
		return nil
	}

	if *benchJSON != "" {
		rep, err := bench.RunComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		// Fold the health-overhead comparison into the same document so
		// BENCH_core.json records the budget verdict alongside the
		// sharding speedup.
		h, err := bench.RunHealthComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *healthBudget)
		if err != nil {
			return err
		}
		fmt.Print(h.Summary())
		rep.Health = &h
		// Likewise the speculation comparison: overhead on a healthy
		// fleet plus the tail payoff under one straggling disk.
		sp, err := bench.RunSpeculationComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *specBudget)
		if err != nil {
			return err
		}
		fmt.Print(sp.Summary())
		rep.Speculation = &sp
		// And the bytes-on-the-wire comparison: the data-less overhead
		// verdict plus real payload MB/s over loopback TCP.
		pl, err := bench.RunPayloadComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *payloadBudget)
		if err != nil {
			return err
		}
		fmt.Print(pl.Summary())
		rep.Payload = &pl
		// And the SLO comparison: the full observability stack's
		// deadline-scoring overhead verdict.
		so, err := bench.RunSLOComparison(bench.Config{
			Disks:    *benchDisks,
			Streams:  *benchStreams,
			Requests: *benchRequests,
		}, *sloBudget)
		if err != nil {
			return err
		}
		fmt.Print(so.Summary())
		rep.SLO = &so
		return rep.WriteJSON(*benchJSON)
	}

	if *list {
		for _, e := range experiments.List() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	opts := experiments.Options{Seed: *seed}
	if *quick {
		opts = experiments.Quick()
		opts.Seed = *seed
	}
	if *warmup != 0 {
		opts.Warmup = *warmup
	}
	if *measure != 0 {
		opts.Measure = *measure
	}

	var entries []experiments.Entry
	switch {
	case *all:
		entries = experiments.List()
	case *fig != "":
		e, err := experiments.Lookup(*fig)
		if err != nil {
			return err
		}
		entries = []experiments.Entry{e}
	default:
		return fmt.Errorf("experiment: pass -fig <id>, -all, or -list")
	}

	for _, e := range entries {
		// Each experiment gets a fresh registry so its snapshot is not
		// polluted by earlier figures; cells within one experiment
		// share it (the counters accumulate, as on a live node).
		if *metrics != "" {
			opts.Registry = obs.NewRegistry()
		}
		started := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(res.Table())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(started).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				return err
			}
		}
		if *metrics != "" {
			if err := writeMetrics(*metrics, res.ID, opts.Registry); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeMetrics dumps one experiment's registry snapshot: to stdout for
// dest "-", else to <dest>/<id>.prom.
func writeMetrics(dest, id string, reg *obs.Registry) error {
	if dest == "-" {
		fmt.Printf("# registry snapshot: %s\n", id)
		return reg.WritePrometheus(os.Stdout)
	}
	if err := os.MkdirAll(dest, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dest, id+".prom"))
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}

func writeCSV(dir string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, res.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteCSV(f)
}
