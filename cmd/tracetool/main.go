// Command tracetool analyzes flight-recorder snapshots: it merges the
// per-shard rings into one global timeline, reconstructs each stream's
// lifecycle (classify→enqueue→dispatch→fetch→staged→deliver→…→retire),
// runs the anomaly detectors, and can export a Chrome trace_event file
// for chrome://tracing or Perfetto.
//
// Usage:
//
//	tracetool -in flight.bin -summary
//	tracetool -addr 127.0.0.1:7071 -streams -anomalies
//	tracetool -in flight.bin -chrome trace.json
//	tracetool -in flight.bin -anomalies -fail-on-anomaly   # CI gate
//	tracetool -bundle bundle-1.json                        # incident replay
//
// -in reads a snapshot file in either the binary /debug/flight format
// or its ?format=json form (sniffed); -addr scrapes a live node's
// debug listener; -bundle loads a blackbox diagnostic bundle and
// reconstructs the incident it captured (reason, SLO burn state,
// anomalies, and the late/missed deliveries attributed per disk and
// stream with exemplar trace ids).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"seqstream/internal/blackbox"
	"seqstream/internal/flight"
	"seqstream/internal/health"
	"seqstream/internal/slo"
)

// reportSchemaVersion stamps tracetool's -json output so downstream
// consumers can detect format drift, mirroring the bundle convention.
const reportSchemaVersion = 1

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// errAnomalies marks the -fail-on-anomaly exit path.
type errAnomalies int

func (e errAnomalies) Error() string {
	return fmt.Sprintf("tracetool: %d anomalies detected", int(e))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "snapshot file (binary or JSON /debug/flight output)")
		addr   = fs.String("addr", "", "scrape a live node's debug address (host:port) instead of -in")
		bundle = fs.String("bundle", "", "blackbox diagnostic bundle file; reconstructs the captured incident instead of -in/-addr")

		summary   = fs.Bool("summary", false, "print event and lifecycle counts")
		streams   = fs.Bool("streams", false, "print each stream's lifecycle")
		anomalies = fs.Bool("anomalies", false, "run the anomaly detectors and print findings")
		failOn    = fs.Bool("fail-on-anomaly", false, "exit nonzero when -anomalies finds anything")
		chrome    = fs.String("chrome", "", "write a Chrome trace_event JSON file to this path")
		jsonOut   = fs.Bool("json", false, "emit the analysis as one JSON report (schema_version stamped) instead of prose")

		starve      = fs.Int("starve-rotations", 0, "rotation-starvation threshold (0 uses the default)")
		stragFactor = fs.Float64("straggler-factor", 0, "straggler median-latency multiple (0 uses the default)")
		stragMin    = fs.Int("straggler-min", 0, "minimum fetches before a disk can be a straggler (0 uses the default)")
		churn       = fs.Float64("evict-churn", 0, "evicted/fetched byte ratio flagged as M pressure (0 uses the default)")
		flaps       = fs.Int("flap-opens", 0, "breaker opens flagged as a flap (0 uses the default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, s := range []string{*in, *addr, *bundle} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("tracetool: need exactly one of -in, -addr, or -bundle")
	}
	if !*summary && !*streams && !*anomalies && *chrome == "" {
		// Bare invocations get the overview; bare bundle replays also
		// run the detectors, since a bundle exists because something
		// went wrong.
		*summary = true
		if *bundle != "" {
			*anomalies = true
		}
	}

	var (
		snap *flight.Snapshot
		bdl  *blackbox.Bundle
		err  error
	)
	if *bundle != "" {
		if bdl, err = blackbox.ReadFile(*bundle); err != nil {
			return fmt.Errorf("tracetool: %w", err)
		}
		if snap = bdl.Flight; snap == nil {
			snap = &flight.Snapshot{}
		}
	} else if snap, err = load(*in, *addr); err != nil {
		return err
	}
	tl := flight.Analyze(snap.Merged())

	var found []health.Anomaly
	if *anomalies {
		found = health.Detect(tl.Events, health.DetectorConfig{
			StarveRotations:     *starve,
			StragglerFactor:     *stragFactor,
			StragglerMinFetches: *stragMin,
			EvictChurnRatio:     *churn,
			FlapOpens:           *flaps,
		})
	}

	if *jsonOut {
		if err := writeJSONReport(out, bdl, tl, found, *anomalies); err != nil {
			return fmt.Errorf("tracetool: %w", err)
		}
		if *failOn && len(found) > 0 {
			return errAnomalies(len(found))
		}
		return nil
	}

	if bdl != nil {
		printBundle(out, bdl, tl)
	}
	if *summary {
		printSummary(out, snap, tl)
	}
	if *streams {
		printStreams(out, tl)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return fmt.Errorf("tracetool: %w", err)
		}
		werr := flight.WriteChromeTrace(f, tl.Events)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("tracetool: writing chrome trace: %w", werr)
		}
		fmt.Fprintf(out, "chrome trace: %d events -> %s\n", len(tl.Events), *chrome)
	}
	if *anomalies {
		if len(found) == 0 {
			fmt.Fprintln(out, "anomalies: none")
		}
		for _, a := range found {
			fmt.Fprintf(out, "anomaly[%s]: %s\n", a.Kind, a.Detail)
		}
		if *failOn && len(found) > 0 {
			return errAnomalies(len(found))
		}
	}
	return nil
}

// sloEventStats aggregates the OpSLOLate/OpSLOMiss events one disk or
// stream accumulated, with an exemplar trace id pointing at the worst
// delivery.
type sloEventStats struct {
	Late       int           `json:"late"`
	Missed     int           `json:"missed"`
	WorstLate  time.Duration `json:"worst_lateness_ns"`
	WorstTrace uint64        `json:"worst_trace,omitempty"`
}

func (s *sloEventStats) fold(e flight.Event) {
	if e.Op == flight.OpSLOMiss {
		s.Missed++
	} else {
		s.Late++
	}
	if e.Dur >= s.WorstLate {
		s.WorstLate = e.Dur
		s.WorstTrace = e.Trace
	}
}

// collectSLOEvents splits the timeline's SLO violation events into
// per-disk and per-stream aggregates.
func collectSLOEvents(events []flight.Event) (byDisk map[int]*sloEventStats, byStream map[int32]*sloEventStats) {
	byDisk = make(map[int]*sloEventStats)
	byStream = make(map[int32]*sloEventStats)
	for _, e := range events {
		if e.Op != flight.OpSLOLate && e.Op != flight.OpSLOMiss {
			continue
		}
		d := byDisk[int(e.Disk)]
		if d == nil {
			d = &sloEventStats{}
			byDisk[int(e.Disk)] = d
		}
		d.fold(e)
		if e.Stream != flight.NoStream {
			st := byStream[e.Stream]
			if st == nil {
				st = &sloEventStats{}
				byStream[e.Stream] = st
			}
			st.fold(e)
		}
	}
	return byDisk, byStream
}

// printBundle renders the incident a blackbox bundle captured: the
// trigger, the SLO burn state at capture, and the late/missed
// deliveries attributed per disk and stream with exemplar trace ids.
func printBundle(out io.Writer, b *blackbox.Bundle, tl *flight.Timeline) {
	fmt.Fprintf(out, "bundle %d (schema %d) captured at %v", b.Seq, b.SchemaVersion, b.CapturedAt)
	if b.WallTime != "" {
		fmt.Fprintf(out, " (%s)", b.WallTime)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "reason: %s\n", b.Reason)
	if s := b.SLO; s != nil {
		fmt.Fprintf(out, "slo: objective=%.4f on-time=%.4f (on_time=%d late=%d missed=%d)\n",
			s.Objective, s.Node.OnTimeRatio, s.Node.OnTime, s.Node.Late, s.Node.Missed)
		fmt.Fprintf(out, "  burn: fast=%.2f mid=%.2f slow=%.2f fast_active=%v slow_active=%v\n",
			s.Burn.Fast.Burn, s.Burn.Mid.Burn, s.Burn.Slow.Burn, s.Burn.FastActive, s.Burn.SlowActive)
		if s.Burn.WorstDisk >= 0 {
			fmt.Fprintf(out, "  worst disk: %d (window bad ratio %.4f)\n",
				s.Burn.WorstDisk, s.Burn.WorstDiskBadRatio)
		}
		for _, st := range s.Streams {
			fmt.Fprintf(out, "  stream %d disk %d: on-time=%.4f late=%d missed=%d worst=%v\n",
				st.Stream, st.Disk, st.OnTimeRatio, st.Late, st.Missed, st.WorstLateness)
		}
	}
	byDisk, byStream := collectSLOEvents(tl.Events)
	disks := make([]int, 0, len(byDisk))
	for d := range byDisk {
		disks = append(disks, d)
	}
	sort.Ints(disks)
	for _, d := range disks {
		s := byDisk[d]
		fmt.Fprintf(out, "violations disk %d: late=%d missed=%d worst=%v trace=%016x\n",
			d, s.Late, s.Missed, s.WorstLate, s.WorstTrace)
	}
	streams := make([]int32, 0, len(byStream))
	for id := range byStream {
		streams = append(streams, id)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i] < streams[j] })
	for _, id := range streams {
		s := byStream[id]
		fmt.Fprintf(out, "violations stream %d: late=%d missed=%d worst=%v trace=%016x\n",
			id, s.Late, s.Missed, s.WorstLate, s.WorstTrace)
	}
}

// jsonReport is tracetool's machine-readable output (-json).
type jsonReport struct {
	SchemaVersion int              `json:"schema_version"`
	Events        int              `json:"events"`
	Streams       int              `json:"streams"`
	Bundle        *jsonBundleMeta  `json:"bundle,omitempty"`
	Anomalies     []health.Anomaly `json:"anomalies,omitempty"`
	AnomaliesRun  bool             `json:"anomalies_run"`

	ViolationsByDisk   map[int]*sloEventStats   `json:"violations_by_disk,omitempty"`
	ViolationsByStream map[int32]*sloEventStats `json:"violations_by_stream,omitempty"`
}

// jsonBundleMeta is the bundle header echoed into the JSON report.
type jsonBundleMeta struct {
	Seq        int           `json:"seq"`
	Reason     string        `json:"reason"`
	CapturedAt time.Duration `json:"captured_at_ns"`
	WallTime   string        `json:"wall_time,omitempty"`
	SLO        *slo.Report   `json:"slo,omitempty"`
}

// writeJSONReport emits the whole analysis as one JSON document.
func writeJSONReport(out io.Writer, bdl *blackbox.Bundle, tl *flight.Timeline, found []health.Anomaly, ran bool) error {
	rep := jsonReport{
		SchemaVersion: reportSchemaVersion,
		Events:        len(tl.Events),
		Streams:       len(tl.Streams),
		Anomalies:     found,
		AnomaliesRun:  ran,
	}
	byDisk, byStream := collectSLOEvents(tl.Events)
	if len(byDisk) > 0 {
		rep.ViolationsByDisk = byDisk
	}
	if len(byStream) > 0 {
		rep.ViolationsByStream = byStream
	}
	if bdl != nil {
		rep.Bundle = &jsonBundleMeta{
			Seq:        bdl.Seq,
			Reason:     bdl.Reason,
			CapturedAt: bdl.CapturedAt,
			WallTime:   bdl.WallTime,
			SLO:        bdl.SLO,
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// load reads the snapshot from a file or scrapes it from a node.
func load(in, addr string) (*flight.Snapshot, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, fmt.Errorf("tracetool: %w", err)
		}
		defer f.Close()
		snap, err := flight.ReadSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("tracetool: %s: %w", in, err)
		}
		return snap, nil
	}
	url := "http://" + addr + "/debug/flight"
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("tracetool: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tracetool: %s returned %s", url, resp.Status)
	}
	snap, err := flight.ReadSnapshot(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("tracetool: %s: %w", url, err)
	}
	return snap, nil
}

// printSummary writes the snapshot overview: ring fill, event counts
// per op, and lifecycle completeness.
func printSummary(out io.Writer, snap *flight.Snapshot, tl *flight.Timeline) {
	fmt.Fprintf(out, "snapshot: %d rings, %d events\n", len(snap.Rings), len(tl.Events))
	for i, ring := range snap.Rings {
		if len(ring) > 0 {
			fmt.Fprintf(out, "  ring %d: %d events (seq %d..%d)\n",
				i, len(ring), ring[0].Seq, ring[len(ring)-1].Seq)
		}
	}
	counts := make(map[flight.Op]int)
	for _, e := range tl.Events {
		counts[e.Op]++
	}
	ops := make([]flight.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		fmt.Fprintf(out, "  op %-13s %d\n", op, counts[op])
	}
	complete := 0
	for _, id := range tl.StreamIDs() {
		if tl.Streams[id].Complete() {
			complete++
		}
	}
	fmt.Fprintf(out, "streams: %d seen, %d with complete lifecycles\n", len(tl.Streams), complete)
}

// printStreams writes one line per stream: its op trail and whether
// the lifecycle is complete.
func printStreams(out io.Writer, tl *flight.Timeline) {
	for _, id := range tl.StreamIDs() {
		l := tl.Streams[id]
		trail := make([]string, 0, len(l.Events))
		for _, e := range l.Events {
			trail = append(trail, e.Op.String())
		}
		status := "complete"
		if !l.Complete() {
			miss := make([]string, 0, 4)
			for _, op := range l.Missing() {
				miss = append(miss, op.String())
			}
			status = "missing " + strings.Join(miss, ",")
		}
		first, last := l.Events[0].T, l.Events[len(l.Events)-1].T
		fmt.Fprintf(out, "stream %d disk %d [%s]: %d events over %v: %s\n",
			id, l.Disk, status, len(l.Events), last-first, compressTrail(trail))
	}
}

// compressTrail collapses runs of repeated ops ("fetch fetch fetch" →
// "fetch×3") so long lifecycles stay one readable line.
func compressTrail(trail []string) string {
	var b strings.Builder
	for i := 0; i < len(trail); {
		j := i
		for j < len(trail) && trail[j] == trail[i] {
			j++
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		b.WriteString(trail[i])
		if j-i > 1 {
			fmt.Fprintf(&b, "×%d", j-i)
		}
		i = j
	}
	return b.String()
}
