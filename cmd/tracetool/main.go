// Command tracetool analyzes flight-recorder snapshots: it merges the
// per-shard rings into one global timeline, reconstructs each stream's
// lifecycle (classify→enqueue→dispatch→fetch→staged→deliver→…→retire),
// runs the anomaly detectors, and can export a Chrome trace_event file
// for chrome://tracing or Perfetto.
//
// Usage:
//
//	tracetool -in flight.bin -summary
//	tracetool -addr 127.0.0.1:7071 -streams -anomalies
//	tracetool -in flight.bin -chrome trace.json
//	tracetool -in flight.bin -anomalies -fail-on-anomaly   # CI gate
//
// -in reads a snapshot file in either the binary /debug/flight format
// or its ?format=json form (sniffed); -addr scrapes a live node's
// debug listener.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"seqstream/internal/flight"
	"seqstream/internal/health"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// errAnomalies marks the -fail-on-anomaly exit path.
type errAnomalies int

func (e errAnomalies) Error() string {
	return fmt.Sprintf("tracetool: %d anomalies detected", int(e))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "snapshot file (binary or JSON /debug/flight output)")
		addr = fs.String("addr", "", "scrape a live node's debug address (host:port) instead of -in")

		summary   = fs.Bool("summary", false, "print event and lifecycle counts")
		streams   = fs.Bool("streams", false, "print each stream's lifecycle")
		anomalies = fs.Bool("anomalies", false, "run the anomaly detectors and print findings")
		failOn    = fs.Bool("fail-on-anomaly", false, "exit nonzero when -anomalies finds anything")
		chrome    = fs.String("chrome", "", "write a Chrome trace_event JSON file to this path")

		starve      = fs.Int("starve-rotations", 0, "rotation-starvation threshold (0 uses the default)")
		stragFactor = fs.Float64("straggler-factor", 0, "straggler median-latency multiple (0 uses the default)")
		stragMin    = fs.Int("straggler-min", 0, "minimum fetches before a disk can be a straggler (0 uses the default)")
		churn       = fs.Float64("evict-churn", 0, "evicted/fetched byte ratio flagged as M pressure (0 uses the default)")
		flaps       = fs.Int("flap-opens", 0, "breaker opens flagged as a flap (0 uses the default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*in == "") == (*addr == "") {
		return fmt.Errorf("tracetool: need exactly one of -in or -addr")
	}
	if !*summary && !*streams && !*anomalies && *chrome == "" {
		*summary = true // bare invocations get the overview
	}

	snap, err := load(*in, *addr)
	if err != nil {
		return err
	}
	tl := flight.Analyze(snap.Merged())

	if *summary {
		printSummary(out, snap, tl)
	}
	if *streams {
		printStreams(out, tl)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return fmt.Errorf("tracetool: %w", err)
		}
		werr := flight.WriteChromeTrace(f, tl.Events)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("tracetool: writing chrome trace: %w", werr)
		}
		fmt.Fprintf(out, "chrome trace: %d events -> %s\n", len(tl.Events), *chrome)
	}
	if *anomalies {
		found := health.Detect(tl.Events, health.DetectorConfig{
			StarveRotations:     *starve,
			StragglerFactor:     *stragFactor,
			StragglerMinFetches: *stragMin,
			EvictChurnRatio:     *churn,
			FlapOpens:           *flaps,
		})
		if len(found) == 0 {
			fmt.Fprintln(out, "anomalies: none")
		}
		for _, a := range found {
			fmt.Fprintf(out, "anomaly[%s]: %s\n", a.Kind, a.Detail)
		}
		if *failOn && len(found) > 0 {
			return errAnomalies(len(found))
		}
	}
	return nil
}

// load reads the snapshot from a file or scrapes it from a node.
func load(in, addr string) (*flight.Snapshot, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, fmt.Errorf("tracetool: %w", err)
		}
		defer f.Close()
		snap, err := flight.ReadSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("tracetool: %s: %w", in, err)
		}
		return snap, nil
	}
	url := "http://" + addr + "/debug/flight"
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("tracetool: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tracetool: %s returned %s", url, resp.Status)
	}
	snap, err := flight.ReadSnapshot(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("tracetool: %s: %w", url, err)
	}
	return snap, nil
}

// printSummary writes the snapshot overview: ring fill, event counts
// per op, and lifecycle completeness.
func printSummary(out io.Writer, snap *flight.Snapshot, tl *flight.Timeline) {
	fmt.Fprintf(out, "snapshot: %d rings, %d events\n", len(snap.Rings), len(tl.Events))
	for i, ring := range snap.Rings {
		if len(ring) > 0 {
			fmt.Fprintf(out, "  ring %d: %d events (seq %d..%d)\n",
				i, len(ring), ring[0].Seq, ring[len(ring)-1].Seq)
		}
	}
	counts := make(map[flight.Op]int)
	for _, e := range tl.Events {
		counts[e.Op]++
	}
	ops := make([]flight.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		fmt.Fprintf(out, "  op %-13s %d\n", op, counts[op])
	}
	complete := 0
	for _, id := range tl.StreamIDs() {
		if tl.Streams[id].Complete() {
			complete++
		}
	}
	fmt.Fprintf(out, "streams: %d seen, %d with complete lifecycles\n", len(tl.Streams), complete)
}

// printStreams writes one line per stream: its op trail and whether
// the lifecycle is complete.
func printStreams(out io.Writer, tl *flight.Timeline) {
	for _, id := range tl.StreamIDs() {
		l := tl.Streams[id]
		trail := make([]string, 0, len(l.Events))
		for _, e := range l.Events {
			trail = append(trail, e.Op.String())
		}
		status := "complete"
		if !l.Complete() {
			miss := make([]string, 0, 4)
			for _, op := range l.Missing() {
				miss = append(miss, op.String())
			}
			status = "missing " + strings.Join(miss, ",")
		}
		first, last := l.Events[0].T, l.Events[len(l.Events)-1].T
		fmt.Fprintf(out, "stream %d disk %d [%s]: %d events over %v: %s\n",
			id, l.Disk, status, len(l.Events), last-first, compressTrail(trail))
	}
}

// compressTrail collapses runs of repeated ops ("fetch fetch fetch" →
// "fetch×3") so long lifecycles stay one readable line.
func compressTrail(trail []string) string {
	var b strings.Builder
	for i := 0; i < len(trail); {
		j := i
		for j < len(trail) && trail[j] == trail[i] {
			j++
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		b.WriteString(trail[i])
		if j-i > 1 {
			fmt.Fprintf(&b, "×%d", j-i)
		}
		i = j
	}
	return b.String()
}
