package main

import (
	"bytes"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"seqstream/internal/blackbox"
	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/flight"
	"seqstream/internal/health"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// trigger adapts the blackbox capturer to health.Capturer (the same
// adapter streamnode uses).
type trigger struct{ c *blackbox.Capturer }

func (t trigger) Capture(reason string) { t.c.Capture(reason) }

// TestSlowDiskBurnRateBundleE2E is the ISSUE acceptance scenario run
// end to end in simulation: a 64-disk node with one disk ~10x slower,
// the SLO ledger scoring every delivery, the health engine evaluating
// burn rates each tick. The slow disk's late deliveries must trip the
// fast burn-rate alert, the trip must auto-capture a blackbox bundle,
// and replaying that bundle through tracetool must attribute the
// violations to the slow disk with a non-zero exemplar trace id.
func TestSlowDiskBurnRateBundleE2E(t *testing.T) {
	const (
		shards  = 8
		reqSize = 64 << 10
		ra      = 256 << 10
	)
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.LargeConfig(iostack.Options{})) // 16x4 = 64 disks
	if err != nil {
		t.Fatal(err)
	}
	simDev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewSimClock(eng)
	// Disk 0 stalls every read-ahead fetch for 250ms — roughly 10x a
	// healthy fetch — while its small direct reads stay fast, so the
	// lateness lands on buffered deliveries the way a degraded spindle
	// would show up in production.
	sd, err := blockdev.NewScriptDevice(simDev, clock, []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: ra, Delay: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(256<<20, ra)
	cfg.Shards = shards
	cfg.WindowSpan = time.Minute
	cfg.SLOTarget = 50 * time.Millisecond
	rec, err := flight.New(clock.Now, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Flight = rec
	srv, err := core.NewServer(sd, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	heng, err := health.NewEngine(rec, srv, clock, health.Config{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer heng.Close()
	heng.SetSLO(srv.SLO())
	dir := t.TempDir()
	capt, err := blackbox.New(blackbox.Config{Dir: dir, MinInterval: -1}, clock.Now, blackbox.Sources{
		Flight: rec,
		SLO:    srv.SLO(),
		Health: func() any { return heng.Report() },
		Stats:  func() any { return srv.Snapshot() },
	})
	if err != nil {
		t.Fatal(err)
	}
	heng.SetCapturer(trigger{capt})
	heng.Start()

	// Two streams share the slow disk; every healthy disk carries one.
	// Each request is traced so violation events carry exemplar ids.
	type spec struct {
		disk  int
		base  int64
		count int
	}
	specs := []spec{
		{disk: 0, base: 0, count: 32},
		{disk: 0, base: 64 << 20, count: 32},
	}
	for d := 1; d < 64; d++ {
		specs = append(specs, spec{disk: d, base: 0, count: 16})
	}
	completed, total := 0, 0
	for _, sp := range specs {
		total += sp.count
	}
	for _, sp := range specs {
		sp := sp
		var issue func(i int)
		issue = func(i int) {
			if i >= sp.count {
				return
			}
			err := srv.Submit(core.Request{
				Disk: sp.disk, Offset: sp.base + int64(i)*reqSize, Length: reqSize,
				Trace: rec.NextTrace(),
				Done: func(r core.Response) {
					if r.Err != nil {
						t.Errorf("disk %d read %d: %v", sp.disk, i, r.Err)
					}
					completed++
					issue(i + 1)
				},
			})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		issue(0)
	}
	if err := eng.RunWhile(func() bool { return completed < total }); err != nil {
		t.Fatalf("RunWhile: %v", err)
	}
	if completed < total {
		t.Fatalf("completed %d of %d requests", completed, total)
	}

	// The slow disk's deliveries blew the 50ms deadline, so the fast
	// burn window must have tripped mid-run and captured a bundle.
	rep := srv.SLO().Report()
	if rep.Node.Late+rep.Node.Missed == 0 {
		t.Fatal("no SLO violations recorded with a 250ms-stalled disk")
	}
	var burn *blackbox.Bundle
	for _, b := range capt.Bundles() {
		if strings.Contains(b.Reason, "fast burn-rate alert") {
			burn = b
			break
		}
	}
	if burn == nil {
		var reasons []string
		for _, b := range capt.Bundles() {
			reasons = append(reasons, b.Reason)
		}
		t.Fatalf("no bundle captured for the fast burn-rate trip; captured: %q", reasons)
	}
	if err := capt.DiskErr(); err != nil {
		t.Fatal(err)
	}

	// Replay the persisted bundle offline: tracetool must attribute
	// the incident to disk 0 with a concrete trace id to chase.
	path := filepath.Join(dir, "bundle-"+strconv.Itoa(burn.Seq)+".json")
	var out bytes.Buffer
	if err := run([]string{"-bundle", path}, &out); err != nil {
		t.Fatalf("tracetool -bundle: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "reason: fast burn-rate alert") {
		t.Errorf("replay missing trip reason:\n%s", text)
	}
	var diskLine string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "violations disk ") {
			diskLine = line
			break
		}
	}
	if !strings.HasPrefix(diskLine, "violations disk 0:") {
		t.Fatalf("violations not attributed to disk 0 (line %q):\n%s", diskLine, text)
	}
	if strings.Contains(diskLine, "trace=0000000000000000") || !strings.Contains(diskLine, "trace=") {
		t.Errorf("no exemplar trace id on the slow disk's violations: %q", diskLine)
	}
}
