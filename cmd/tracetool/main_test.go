package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seqstream/internal/blackbox"
	"seqstream/internal/flight"
)

// buildRecorder records one complete stream lifecycle plus a starved
// stream, across two rings.
func buildRecorder(t *testing.T) *flight.Recorder {
	t.Helper()
	var now time.Duration
	rec, err := flight.New(func() time.Duration { now += time.Microsecond; return now }, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	r0 := rec.Ring(0)
	for _, op := range []flight.Op{flight.OpClassify, flight.OpEnqueue, flight.OpDispatch} {
		r0.Record(flight.Event{Op: op, Stream: 1, Disk: 0, T: rec.Now()})
	}
	r0.Record(flight.Event{Op: flight.OpFetch, Stream: 1, Disk: 0, Length: 1 << 20, T: rec.Now()})
	r0.Record(flight.Event{Op: flight.OpStaged, Stream: 1, Disk: 0, Length: 1 << 20, T: rec.Now(), Dur: time.Microsecond})
	r0.Record(flight.Event{Op: flight.OpDeliver, Stream: 1, Disk: 0, Length: 4096, T: rec.Now(), Trace: 7})
	r0.Record(flight.Event{Op: flight.OpRetire, Stream: 1, Disk: 0, T: rec.Now()})
	// Stream 2 enqueues on ring 1 and starves behind 8 rotations.
	r1 := rec.Ring(1)
	r1.Record(flight.Event{Op: flight.OpEnqueue, Stream: 2, Disk: 1, T: rec.Now()})
	for i := 0; i < 8; i++ {
		r1.Record(flight.Event{Op: flight.OpRotate, Stream: 3, Disk: 1, T: rec.Now()})
	}
	return rec
}

// writeSnapshot saves the recorder's snapshot to a temp file.
func writeSnapshot(t *testing.T, rec *flight.Recorder) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flight.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Snapshot().WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no input source accepted")
	}
	if err := run([]string{"-in", "x", "-addr", "y"}, &out); err == nil {
		t.Fatal("both input sources accepted")
	}
}

func TestSummaryAndStreamsFromFile(t *testing.T) {
	path := writeSnapshot(t, buildRecorder(t))
	var out bytes.Buffer
	// Bare invocation defaults to -summary.
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"2 rings", "op classify", "op retire", "streams: 3 seen, 1 with complete lifecycles"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-in", path, "-streams"}, &out); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	if !strings.Contains(text, "stream 1 disk 0 [complete]") {
		t.Fatalf("stream 1 not reported complete:\n%s", text)
	}
	if !strings.Contains(text, "stream 2 disk 1 [missing") {
		t.Fatalf("stream 2 not reported incomplete:\n%s", text)
	}
}

func TestAnomaliesAndFailFlag(t *testing.T) {
	path := writeSnapshot(t, buildRecorder(t))
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-anomalies", "-starve-rotations", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "anomaly[rotation-starvation]") {
		t.Fatalf("starvation not detected:\n%s", out.String())
	}
	// With -fail-on-anomaly the same run errors.
	if err := run([]string{"-in", path, "-anomalies", "-starve-rotations", "4", "-fail-on-anomaly"}, &out); err == nil {
		t.Fatal("fail-on-anomaly did not fail")
	}
	// Raising the threshold quiets it.
	out.Reset()
	if err := run([]string{"-in", path, "-anomalies", "-starve-rotations", "100", "-fail-on-anomaly"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "anomalies: none") {
		t.Fatalf("quiet run should say none:\n%s", out.String())
	}
}

func TestChromeExport(t *testing.T) {
	path := writeSnapshot(t, buildRecorder(t))
	chromePath := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-chrome", chromePath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome output not a JSON array: %v", err)
	}
	if len(events) != 16 {
		t.Fatalf("chrome trace has %d events, want 16", len(events))
	}
}

func TestScrapeAddr(t *testing.T) {
	rec := buildRecorder(t)
	srv := httptest.NewServer(flight.Handler(rec))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "-summary"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "streams: 3 seen") {
		t.Fatalf("scraped summary:\n%s", out.String())
	}
}

// writeBundle persists a blackbox bundle wrapping the recorder's
// flight snapshot, with SLO violation events on a slow disk.
func writeBundle(t *testing.T) string {
	t.Helper()
	rec := buildRecorder(t)
	// Disk 1 misses its deadlines: tag the late deliveries.
	r1 := rec.Ring(1)
	r1.Record(flight.Event{Op: flight.OpSLOLate, Stream: 2, Disk: 1, T: rec.Now(), Dur: 3 * time.Millisecond, Trace: 0xabc})
	r1.Record(flight.Event{Op: flight.OpSLOMiss, Stream: 2, Disk: 1, T: rec.Now(), Dur: 9 * time.Millisecond, Trace: 0xdef})

	dir := t.TempDir()
	clk := func() time.Duration { return time.Second }
	capt, err := blackbox.New(blackbox.Config{Dir: dir, MinInterval: -1}, clk, blackbox.Sources{Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	if capt.Capture("burn-rate fast alert") == nil {
		t.Fatal("capture failed")
	}
	if err := capt.DiskErr(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "bundle-1.json")
}

func TestBundleReplay(t *testing.T) {
	path := writeBundle(t)
	var out bytes.Buffer
	// Bare -bundle invocation replays the incident: header, summary,
	// detectors, and per-disk/per-stream violation attribution.
	if err := run([]string{"-bundle", path, "-starve-rotations", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"bundle 1 (schema 1)",
		"reason: burn-rate fast alert",
		"anomaly[rotation-starvation]",
		"violations disk 1: late=1 missed=1 worst=9ms trace=0000000000000def",
		"violations stream 2: late=1 missed=1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("bundle replay missing %q:\n%s", want, text)
		}
	}
	// A bundle is one source too many next to -in.
	if err := run([]string{"-bundle", path, "-in", "x"}, &out); err == nil {
		t.Fatal("bundle+in accepted")
	}
}

func TestJSONReport(t *testing.T) {
	path := writeBundle(t)
	var out bytes.Buffer
	if err := run([]string{"-bundle", path, "-json", "-anomalies", "-starve-rotations", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, out.String())
	}
	if v, ok := rep["schema_version"].(float64); !ok || int(v) != reportSchemaVersion {
		t.Fatalf("schema_version = %v", rep["schema_version"])
	}
	if rep["bundle"] == nil || rep["anomalies"] == nil || rep["violations_by_disk"] == nil {
		t.Fatalf("report sections missing:\n%s", out.String())
	}
}

func TestCompressTrail(t *testing.T) {
	got := compressTrail([]string{"fetch", "fetch", "fetch", "staged", "deliver", "deliver"})
	if got != "fetch×3 staged deliver×2" {
		t.Fatalf("compressTrail = %q", got)
	}
	if compressTrail(nil) != "" {
		t.Fatal("empty trail should compress to empty")
	}
}

func TestBadSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path}, &out); err == nil {
		t.Fatal("junk snapshot accepted")
	}
}
