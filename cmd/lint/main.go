// Command lint is the repo's multichecker: it runs the custom
// determinism, scheduler-invariant, and type-aware flow analyzers
// over the given package patterns and exits non-zero on findings.
//
// Usage:
//
//	go run ./cmd/lint ./...
//	go run ./cmd/lint -list
//	go run ./cmd/lint -run simdet,lockcheck ./internal/...
//	go run ./cmd/lint -json ./... | jq .
//
// Findings print as file:line:col: [analyzer] message (or as a JSON
// array with -json, for tooling). A finding is suppressed by a
// `//lint:allow <analyzer> <reason>` comment on the same line or the
// line above (see internal/analysis/framework).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"seqstream/internal/analysis/atomiccheck"
	"seqstream/internal/analysis/framework"
	"seqstream/internal/analysis/lockcheck"
	"seqstream/internal/analysis/refcheck"
	"seqstream/internal/analysis/shardcheck"
	"seqstream/internal/analysis/simdet"
	"seqstream/internal/analysis/unitcheck"
)

var all = []*framework.Analyzer{
	simdet.Analyzer,
	lockcheck.Analyzer,
	unitcheck.Analyzer,
	refcheck.Analyzer,
	atomiccheck.Analyzer,
	shardcheck.Analyzer,
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range all {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(stderr, "lint: unknown analyzer %q\n", name)
				return 2
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	diags, err := framework.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
