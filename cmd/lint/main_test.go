package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestList prints every analyzer and exits 0.
func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"simdet", "lockcheck", "unitcheck", "refcheck", "atomiccheck", "shardcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer is a usage error (exit 2).
func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestCleanPackages: the gated simulation packages lint clean (exit 0).
// This is the same invocation CI runs repo-wide.
func TestCleanPackages(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", "../..", "./internal/sim/...", "./internal/units/..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestJSONOutput: -json emits a decodable array (empty for a clean
// run) and nothing else on stdout.
func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", "../..", "-json", "./internal/units/..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostics array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Fatalf("clean package produced findings: %v", diags)
	}
}
