module seqstream

go 1.22
