// Benchmarks regenerating the paper's figures. Each benchmark runs one
// experiment end-to-end on the simulator and reports the figure's
// headline series as custom metrics (simulated MB/s or milliseconds).
// Wall-clock ns/op measures harness cost only; the reproduced values
// are the sim_* metrics. Run a single figure with:
//
//	go test -bench=Fig10 -benchtime=1x
package seqstream_test

import (
	"strings"
	"testing"
	"time"

	"seqstream/internal/experiments"
)

// benchOpts keeps benchmark runs short while preserving shapes.
func benchOpts() experiments.Options {
	return experiments.Options{Warmup: time.Second, Measure: 2 * time.Second, Seed: 1}
}

// longOpts is used by experiments that need detection warmup at high
// stream counts.
func longOpts() experiments.Options {
	return experiments.Options{Warmup: 4 * time.Second, Measure: 6 * time.Second, Seed: 1}
}

// metricName flattens a series/x pair into a metric label.
func metricName(series, x string) string {
	r := strings.NewReplacer(" ", "_", "=", "", "#", "", "(", "", ")", "", "/", "-")
	return "sim_" + r.Replace(series) + "@" + r.Replace(x)
}

// runFigure executes the experiment once per benchmark iteration and
// reports the selected cells.
func runFigure(b *testing.B, id string, opts experiments.Options, cells [][2]string, unit string) {
	b.Helper()
	entry, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := entry.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, cell := range cells {
		x, series := cell[0], cell[1]
		v, ok := last.Value(x, series)
		if !ok {
			b.Fatalf("%s: missing cell (%s, %s)", id, x, series)
		}
		b.ReportMetric(v, metricName(series, x)+"_"+unit)
	}
}

func BenchmarkFig01ThroughputCollapse(b *testing.B) {
	runFigure(b, "fig01", benchOpts(), [][2]string{
		{"256K", "60 streams"},
		{"256K", "500 streams"},
		{"64K", "100 streams"},
	}, "MBps")
}

func BenchmarkFig02SchedulerComparison(b *testing.B) {
	runFigure(b, "fig02", benchOpts(), [][2]string{
		{"1", "anticipatory"},
		{"256", "anticipatory"},
		{"256", "noop"},
	}, "MBps")
}

func BenchmarkFig04RequestSize(b *testing.B) {
	runFigure(b, "fig04", benchOpts(), [][2]string{
		{"64K", "1 streams"},
		{"64K", "30 streams"},
		{"256K", "100 streams"},
	}, "MBps")
}

func BenchmarkFig05XddSingleDisk(b *testing.B) {
	runFigure(b, "fig05", benchOpts(), [][2]string{
		{"8K", "1 streams"},
		{"8K", "10 streams"},
		{"8K", "50 streams"},
	}, "MBps")
}

func BenchmarkFig06SegmentSize(b *testing.B) {
	runFigure(b, "fig06", benchOpts(), [][2]string{
		{"32K", "30 streams"},
		{"2M", "30 streams"},
	}, "MBps")
}

func BenchmarkFig07ReadAheadFixedCache(b *testing.B) {
	runFigure(b, "fig07", benchOpts(), [][2]string{
		{"128x64K", "30 streams"},
		{"8x1M", "1 streams"},
		{"8x1M", "30 streams"},
	}, "MBps")
}

func BenchmarkFig08ControllerPrefetch(b *testing.B) {
	runFigure(b, "fig08", benchOpts(), [][2]string{
		{"512K", "60 streams"},
		{"4M", "60 streams"},
		{"4M", "1 streams"},
	}, "MBps")
}

func BenchmarkFig10CoreReadAhead(b *testing.B) {
	runFigure(b, "fig10", longOpts(), [][2]string{
		{"100", "R=8M"},
		{"100", "no readahead"},
		{"10", "R=8M"},
	}, "MBps")
}

func BenchmarkFig11MemorySize(b *testing.B) {
	runFigure(b, "fig11", longOpts(), [][2]string{
		{"8", "S=1 RA=8M"},
		{"256", "S=100 RA=8M"},
		{"256", "S=100 RA=256K"},
	}, "MBps")
}

func BenchmarkFig12EightDiskDispatchAll(b *testing.B) {
	runFigure(b, "fig12", longOpts(), [][2]string{
		{"10", "R=2M"},
		{"100", "R=2M"},
		{"100", "no readahead"},
	}, "MBps")
}

func BenchmarkFig13DispatchStagedSplit(b *testing.B) {
	runFigure(b, "fig13", longOpts(), [][2]string{
		{"30", "D=#disks N=128"},
		{"30", "D=S (from Fig12)"},
	}, "MBps")
}

func BenchmarkFig14SingleDiskSmallDispatch(b *testing.B) {
	runFigure(b, "fig14", longOpts(), [][2]string{
		{"30", "D=1 N=128 R=512K"},
		{"30", "R=2M D=S (Fig10)"},
	}, "MBps")
}

func BenchmarkFig15ResponseTime(b *testing.B) {
	runFigure(b, "fig15", longOpts(), [][2]string{
		{"256K", "S=100 M=256MB"},
		{"8M", "S=100 M=256MB"},
		{"8M", "S=1 M=8MB"},
	}, "ms")
}

func BenchmarkAblationDispatchPolicy(b *testing.B) {
	runFigure(b, "abl-policy", benchOpts(), [][2]string{
		{"60", "round-robin"},
		{"60", "nearest-offset"},
	}, "MBps")
}

func BenchmarkAblationClassifierOffset(b *testing.B) {
	runFigure(b, "abl-region", benchOpts(), [][2]string{
		{"8", "60 streams"},
		{"256", "60 streams"},
	}, "MBps")
}

func BenchmarkAblationGCPeriod(b *testing.B) {
	runFigure(b, "abl-gc", benchOpts(), [][2]string{
		{"100ms", "live streams"},
		{"8s", "live streams"},
	}, "MBps")
}

func BenchmarkAblationOutstanding(b *testing.B) {
	runFigure(b, "abl-outstanding", benchOpts(), [][2]string{
		{"1", "30 streams"},
		{"8", "30 streams"},
	}, "MBps")
}

func BenchmarkAblationLatencyDistribution(b *testing.B) {
	runFigure(b, "abl-latency", benchOpts(), [][2]string{
		{"p50", "scheduled R=1M"},
		{"p99", "scheduled R=1M"},
		{"p50", "direct"},
	}, "ms")
}

func BenchmarkAblationNearSeq(b *testing.B) {
	runFigure(b, "abl-nearseq", benchOpts(), [][2]string{
		{"1/4", "strict"},
		{"1/4", "near-seq window=1M"},
	}, "MBps")
}

// BenchmarkHeadline reports the paper's single headline number: the
// improvement factor of the stream scheduler over the direct path at
// 100 streams on one disk.
func BenchmarkHeadline(b *testing.B) {
	entry, err := experiments.Lookup("fig10")
	if err != nil {
		b.Fatal(err)
	}
	var factor float64
	for i := 0; i < b.N; i++ {
		res, err := entry.Run(longOpts())
		if err != nil {
			b.Fatal(err)
		}
		sched, ok1 := res.Value("100", "R=8M")
		base, ok2 := res.Value("100", "no readahead")
		if !ok1 || !ok2 || base == 0 {
			b.Fatal("missing cells")
		}
		factor = sched / base
	}
	b.ReportMetric(factor, "improvement_x")
	if factor < 4 {
		b.Errorf("improvement %.1fx below the paper's 4x", factor)
	}
}
