// Package seqstream reproduces "Reducing Disk I/O Performance
// Sensitivity for Large Numbers of Sequential Streams" (ICDCS 2009):
// a discrete-event disk/controller simulator, Linux-style I/O
// scheduler baselines, and the paper's host-level stream scheduler
// (classifier, dispatch set, buffered set), together with a benchmark
// harness that regenerates every figure of the paper's evaluation.
//
// See README.md for the layout and DESIGN.md for the system inventory.
package seqstream
