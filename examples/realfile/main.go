// Realfile: the "real system" half of the paper, scaled down — the
// exact same scheduler code path runs against the operating system
// through a file-backed device. The example creates two scratch files,
// drives interleaved sequential streams through the scheduler, and
// verifies the returned bytes.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
)

const (
	fileSize = 64 << 20
	reqSize  = 64 << 10
	streams  = 8
	requests = 64
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func writeScratch(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 1<<20)
	for off := int64(0); off < fileSize; off += int64(len(buf)) {
		for i := range buf {
			buf[i] = byte((off + int64(i)) % 251)
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func run() error {
	dir, err := os.MkdirTemp("", "seqstream")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	paths := []string{filepath.Join(dir, "disk0.img"), filepath.Join(dir, "disk1.img")}
	for _, p := range paths {
		if err := writeScratch(p); err != nil {
			return err
		}
	}

	dev, err := blockdev.OpenFileDevice(paths, 4)
	if err != nil {
		return err
	}
	defer dev.Close()

	cfg := core.DefaultConfig(64<<20, 2<<20)
	node, err := core.NewServer(dev, blockdev.NewRealClock(), cfg)
	if err != nil {
		return err
	}
	defer node.Close()

	var (
		mu       sync.Mutex
		bytes    int64
		verified int64
		corrupt  int64
	)
	var wg sync.WaitGroup
	started := time.Now()

	for s := 0; s < streams; s++ {
		wg.Add(1)
		disk := s % len(paths)
		base := int64(s/len(paths)) * (fileSize / int64(streams/len(paths)))
		base -= base % 512
		var issue func(i int)
		issue = func(i int) {
			if i >= requests {
				wg.Done()
				return
			}
			off := base + int64(i)*reqSize
			err := node.Submit(core.Request{Disk: disk, Offset: off, Length: reqSize,
				Done: func(r core.Response) {
					mu.Lock()
					if r.Err == nil {
						bytes += reqSize
						if r.Data != nil {
							verified++
							for j, b := range r.Data {
								if b != byte((off+int64(j))%251) {
									corrupt++
									break
								}
							}
						}
					}
					mu.Unlock()
					issue(i + 1)
				}})
			if err != nil {
				wg.Done()
			}
		}
		issue(0)
	}
	wg.Wait()
	elapsed := time.Since(started)

	st := node.Stats()
	fmt.Printf("read %d MB across %d streams on %d files in %v (%.1f MB/s)\n",
		bytes>>20, streams, len(paths), elapsed.Round(time.Millisecond),
		float64(bytes)/elapsed.Seconds()/1e6)
	fmt.Printf("scheduler: detected=%d fetches=%d staged-hits=%d direct=%d\n",
		st.StreamsDetected, st.Fetches, st.BufferHits+st.QueuedServed, st.DirectReads)
	fmt.Printf("integrity: %d responses carried data, %d corrupt\n", verified, corrupt)
	if corrupt > 0 {
		return fmt.Errorf("data corruption detected")
	}
	return nil
}
