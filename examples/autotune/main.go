// Autotune: §5.4's point that a node can achieve high utilization in
// different I/O subsystem configurations by setting (D, R, N, M)
// appropriately. The same 480-stream workload runs on a small node
// (1 disk, 64 MB of staging memory) and a large node (8 disks, 512 MB),
// each with parameters derived from the node description, and the
// scheduler keeps both insensitive to the stream count.
package main

import (
	"fmt"
	"os"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// nodeSpec describes the hardware the tuner sees.
type nodeSpec struct {
	name   string
	stack  iostack.Config
	disks  int
	memory int64
}

// tune derives the paper's four parameters from the node description
// using the library's static tuner (§5.4).
func tune(spec nodeSpec) (core.Config, error) {
	return core.Tune(core.NodeSpec{
		Disks:     spec.disks,
		Memory:    spec.memory,
		MediaRate: spec.stack.Controllers[0].Disks[0].Geometry.MediaRateOuter,
	})
}

func run() error {
	nodes := []nodeSpec{
		{name: "small (1 disk, 64MB)", stack: iostack.BaseConfig(iostack.Options{}), disks: 1, memory: 64 << 20},
		{name: "large (8 disks, 512MB)", stack: iostack.Testbed8Config(iostack.Options{}), disks: 8, memory: 512 << 20},
	}
	streamCounts := []int{10, 60, 480}

	for _, spec := range nodes {
		cfg, err := tune(spec)
		if err != nil {
			return err
		}
		fmt.Printf("%s -> tuned D=%d R=%dMB N=%d M=%dMB\n",
			spec.name, cfg.DispatchSize, cfg.ReadAhead>>20, cfg.RequestsPerStream, cfg.Memory>>20)
		var base float64
		for _, s := range streamCounts {
			mbps, err := measure(spec, cfg, s)
			if err != nil {
				return err
			}
			if base == 0 {
				base = mbps
			}
			fmt.Printf("  %4d streams: %7.1f MB/s (%.0f%% of %d-stream run)\n",
				s, mbps, 100*mbps/base, streamCounts[0])
		}
		fmt.Println()
	}
	return nil
}

func measure(spec nodeSpec, cfg core.Config, streams int) (float64, error) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, spec.stack)
	if err != nil {
		return 0, err
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		return 0, err
	}
	node, err := core.NewServer(dev, blockdev.NewSimClock(eng), cfg)
	if err != nil {
		return 0, err
	}
	defer node.Close()

	const reqSize = 64 << 10
	const warmup = 30 * time.Second
	const window = 20 * time.Second
	perDisk := (streams + spec.disks - 1) / spec.disks
	capacity := dev.Capacity(0)
	spacing := capacity / int64(perDisk)
	spacing -= spacing % 512

	var bytes int64
	for i := 0; i < streams; i++ {
		disk := i % spec.disks
		next := int64(i/spec.disks) * spacing
		var issue func()
		issue = func() {
			off := next
			next += reqSize
			if err := node.Submit(core.Request{Disk: disk, Offset: off, Length: reqSize,
				Done: func(core.Response) {
					if now := eng.Now(); now >= warmup && now <= warmup+window {
						bytes += reqSize
					}
					issue()
				}}); err != nil {
				return
			}
		}
		issue()
	}
	if err := eng.RunUntil(warmup + window); err != nil {
		return 0, err
	}
	return float64(bytes) / window.Seconds() / 1e6, nil
}
