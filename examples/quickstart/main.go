// Quickstart: build a simulated storage node, push 100 sequential
// streams through the host-level stream scheduler, and compare the
// delivered throughput against the same workload issued directly to
// the disks (the paper's headline experiment, Figure 10).
package main

import (
	"fmt"
	"os"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

const (
	streams   = 100
	reqSize   = 64 << 10
	readAhead = 8 << 20
	warmup    = 4 * time.Second
	measure   = 8 * time.Second
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	direct, err := measureDirect()
	if err != nil {
		return err
	}
	scheduled, err := measureScheduled()
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d sequential streams of synchronous %dKB reads, one disk\n",
		streams, reqSize>>10)
	fmt.Printf("  direct to disk:        %6.1f MB/s\n", direct)
	fmt.Printf("  with stream scheduler: %6.1f MB/s  (R=%dMB, M=S*R, D=S)\n",
		scheduled, readAhead>>20)
	fmt.Printf("  improvement:           %6.1fx\n", scheduled/direct)
	return nil
}

// drive runs the synchronous streams against submit and returns MB/s
// measured in the steady-state window.
func drive(eng *sim.Engine, capacity int64, submit func(off, n int64, done func()) error) (float64, error) {
	spacing := capacity / streams
	spacing -= spacing % 512
	var bytes int64
	for s := 0; s < streams; s++ {
		next := int64(s) * spacing
		var issue func()
		issue = func() {
			off := next
			next += reqSize
			if err := submit(off, reqSize, func() {
				if now := eng.Now(); now >= warmup && now <= warmup+measure {
					bytes += reqSize
				}
				issue()
			}); err != nil {
				return // stream ran off the disk
			}
		}
		issue()
	}
	if err := eng.RunUntil(warmup + measure); err != nil {
		return 0, err
	}
	return float64(bytes) / measure.Seconds() / 1e6, nil
}

func measureDirect() (float64, error) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		return 0, err
	}
	return drive(eng, host.DiskCapacity(0), func(off, n int64, done func()) error {
		return host.ReadAt(0, off, n, func(iostack.Result) { done() })
	})
}

func measureScheduled() (float64, error) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		return 0, err
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		return 0, err
	}
	cfg := core.DefaultConfig(streams*readAhead, readAhead)
	node, err := core.NewServer(dev, blockdev.NewSimClock(eng), cfg)
	if err != nil {
		return 0, err
	}
	defer node.Close()
	return drive(eng, dev.Capacity(0), func(off, n int64, done func()) error {
		return node.Submit(core.Request{Disk: 0, Offset: off, Length: n,
			Done: func(core.Response) { done() }})
	})
}
