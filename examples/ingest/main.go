// Ingest: the write-once half of the paper's motivating workloads
// ("storing and retrieving (large) I/O streams"). Many recorders write
// small sequential blocks concurrently; the ingest coalescer stages
// them into chunk-sized device writes, so the disk sees large
// sequential transfers. The example compares ingest throughput with
// the same workload issued directly.
package main

import (
	"fmt"
	"os"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

const (
	recorders = 50
	reqSize   = 64 << 10
	perRec    = 128
	chunk     = 2 << 20
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	direct, err := measureDirect()
	if err != nil {
		return err
	}
	coalesced, err := measureIngest()
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d recorders, each writing %d x %dKB sequentially, one disk\n",
		recorders, perRec, reqSize>>10)
	fmt.Printf("  direct writes:        %6.1f MB/s\n", direct)
	fmt.Printf("  ingest coalescer:     %6.1f MB/s  (chunk=%dMB, write-behind)\n", coalesced, chunk>>20)
	fmt.Printf("  improvement:          %6.1fx\n", coalesced/direct)
	return nil
}

func placements(capacity int64) []int64 {
	spacing := capacity / recorders
	spacing -= spacing % 512
	offs := make([]int64, recorders)
	for i := range offs {
		offs[i] = int64(i) * spacing
	}
	return offs
}

func measureDirect() (float64, error) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		return 0, err
	}
	var bytes int64
	for _, base := range placements(host.DiskCapacity(0)) {
		base := base
		var issue func(i int)
		issue = func(i int) {
			if i >= perRec {
				return
			}
			if err := host.WriteAt(0, base+int64(i)*reqSize, reqSize, func(iostack.Result) {
				bytes += reqSize
				issue(i + 1)
			}); err != nil {
				return
			}
		}
		issue(0)
	}
	if err := eng.Run(); err != nil {
		return 0, err
	}
	return float64(bytes) / eng.Now().Seconds() / 1e6, nil
}

func measureIngest() (float64, error) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		return 0, err
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		return 0, err
	}
	ing, err := core.NewIngest(dev, blockdev.NewSimClock(eng), core.IngestConfig{
		ChunkSize: chunk,
		Memory:    recorders * chunk,
	})
	if err != nil {
		return 0, err
	}
	defer ing.Close()

	// Recorders arrive paced (write-behind acks are immediate, so the
	// virtual pacing defines the interleave, like real capture nodes).
	offs := placements(dev.Capacity(0))
	const tick = 5 * time.Millisecond
	for r := range offs {
		r := r
		var issue func(i int)
		issue = func(i int) {
			if i >= perRec {
				return
			}
			if err := ing.Write(0, offs[r]+int64(i)*reqSize, nil, reqSize, nil); err != nil {
				return
			}
			eng.Schedule(tick, func() { issue(i + 1) })
		}
		eng.Schedule(time.Duration(r)*tick/recorders, func() { issue(0) })
	}
	if err := eng.Run(); err != nil {
		return 0, err
	}
	ing.FlushAsync()
	if err := eng.Run(); err != nil {
		return 0, err
	}
	st := ing.Stats()
	total := float64(st.BytesFlushed)
	// Device-side wall time bounds the comparison.
	busy := host.Disk(0).Stats().BusyTime
	if busy <= 0 {
		return 0, fmt.Errorf("ingest: no disk activity")
	}
	return total / busy.Seconds() / 1e6, nil
}
