// Mediaserver: the introduction's motivating scenario. A media service
// must sustain playout streams of a fixed bitrate (e.g. 1 MB/s VoD
// streams) from as few disks as possible. This example measures how
// many streams one disk sustains at the target bitrate with the plain
// I/O path versus the stream scheduler, and therefore how many disks a
// 200-stream service needs.
package main

import (
	"fmt"
	"os"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

const (
	bitrate  = 1e6      // bytes/s per playout stream
	reqSize  = 64 << 10 // media player read granularity
	deadline = 0.95     // fraction of requests that must meet the bitrate pace
	service  = 200      // streams the whole service must sustain
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("target: %d playout streams at %.0f KB/s each (%.0f MB/s total)\n\n",
		service, bitrate/1e3, service*bitrate/1e6)

	directCap, err := capacitySearch(false)
	if err != nil {
		return err
	}
	schedCap, err := capacitySearch(true)
	if err != nil {
		return err
	}

	report := func(name string, perDisk int) {
		disks := (service + perDisk - 1) / perDisk
		fmt.Printf("%-24s %3d streams/disk -> %d disks for the service\n", name, perDisk, disks)
	}
	report("direct I/O path:", directCap)
	report("stream scheduler:", schedCap)
	fmt.Printf("\ndisk savings: %.1fx fewer spindles\n",
		float64((service+directCap-1)/directCap)/float64((service+schedCap-1)/schedCap))
	return nil
}

// capacitySearch finds the largest stream count one disk sustains at
// the bitrate (binary search over stream counts).
func capacitySearch(scheduled bool) (int, error) {
	lo, hi := 1, 64
	// Expand until failure.
	for {
		ok, err := sustains(hi, scheduled)
		if err != nil {
			return 0, err
		}
		if !ok || hi >= 512 {
			break
		}
		lo, hi = hi, hi*2
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		ok, err := sustains(mid, scheduled)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// sustains reports whether `streams` paced readers each hold the
// bitrate on one disk: a stream is on pace if it completes its reads
// within the pacing interval (deadline fraction of the time).
func sustains(streams int, scheduled bool) (bool, error) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		return false, err
	}

	var submit func(off, n int64, done func()) error
	if scheduled {
		dev, err := blockdev.NewSimDevice(host)
		if err != nil {
			return false, err
		}
		// Double-buffer per stream: one staged read-ahead being played
		// plus one in flight, so boundary crossings never stall.
		cfg := core.DefaultConfig(int64(2*streams)*(4<<20), 4<<20)
		node, err := core.NewServer(dev, blockdev.NewSimClock(eng), cfg)
		if err != nil {
			return false, err
		}
		defer node.Close()
		submit = func(off, n int64, done func()) error {
			return node.Submit(core.Request{Disk: 0, Offset: off, Length: n,
				Done: func(core.Response) { done() }})
		}
	} else {
		submit = func(off, n int64, done func()) error {
			return host.ReadAt(0, off, n, func(iostack.Result) { done() })
		}
	}

	// Paced playout: each stream must read reqSize every interval to
	// hold the bitrate; reads that complete after the next tick are
	// late.
	interval := time.Duration(float64(reqSize) / bitrate * float64(time.Second))
	capacity := host.DiskCapacity(0)
	spacing := capacity / int64(streams)
	spacing -= spacing % 512
	const warmup = 8 * time.Second // stream detection + first fetches
	const horizon = 28 * time.Second
	var total, late int

	// Playout starts are staggered across one read-ahead consumption
	// window (viewers do not press play in lockstep); without this the
	// streams cross their buffer boundaries simultaneously and the
	// fetch bursts queue behind each other.
	raWindow := time.Duration(float64(4<<20) / bitrate * float64(time.Second))
	for s := 0; s < streams; s++ {
		phase := time.Duration(s) * raWindow / time.Duration(streams)
		next := int64(s) * spacing
		var tick func()
		tick = func() {
			issued := eng.Now()
			off := next
			next += reqSize
			if err := submit(off, reqSize, func() {
				if issued < warmup {
					return
				}
				total++
				if eng.Now()-issued > interval {
					late++
				}
			}); err != nil {
				return
			}
			if eng.Now() < horizon {
				eng.Schedule(interval, tick)
			}
		}
		eng.Schedule(phase, tick)
	}
	if err := eng.RunUntil(horizon); err != nil {
		return false, err
	}
	if total == 0 {
		return false, nil
	}
	onTime := 1 - float64(late)/float64(total)
	return onTime >= deadline, nil
}
